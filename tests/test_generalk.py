"""Tests for the general-K stability study."""

import pytest

from repro.analysis.generalk import (
    SweepRow,
    empirical_drift,
    region_occupancy,
    region_signature,
    stability_sweep,
)
from repro.analysis.slotted import FixedCwRule

# Heavy end-to-end simulations: excluded from the CI fast lane.
pytestmark = pytest.mark.slow


class TestRegionSignature:
    def test_signature_bits(self):
        assert region_signature((0.0, 5.0, 0.0)) == (False, True, False)
        assert region_signature(()) == ()

    def test_signature_matches_named_regions(self):
        from repro.analysis.regions import REGIONS_4HOP, region_of

        for name, signature in REGIONS_4HOP.items():
            buffers = tuple(3.0 if s else 0.0 for s in signature)
            assert region_signature(buffers) == signature
            assert region_of(*buffers) == name


class TestStabilitySweep:
    @pytest.fixture(scope="class")
    def rows(self):
        return stability_sweep(hop_range=(3, 4, 5, 6), slots=40_000, seed=1)

    def test_two_rows_per_k(self, rows):
        assert len(rows) == 8

    def test_fixed_cw_diverges_for_k4_and_k6(self, rows):
        """The slotted abstraction shows the [9] divergence at K=4 and
        K=6; K=5 is quasi-stable in this model because links 0 and 3
        fire in parallel (pattern [1,0,0,1,...]), periodically relieving
        node 1 — an even/odd parity artefact of the winner process (the
        packet-level simulator shows turbulence for every K >= 4)."""
        by_key = {(r.hops, r.rule): r for r in rows}
        assert by_key[(4, "802.11")].diverged
        assert by_key[(6, "802.11")].diverged

    def test_ezflow_bounded_for_all_k(self, rows):
        for row in rows:
            if row.rule == "ezflow":
                assert not row.diverged, f"K={row.hops} EZ-flow diverged"
                assert row.max_b1 < 200

    def test_ezflow_delivery_not_worse(self, rows):
        by_key = {(r.hops, r.rule): r for r in rows}
        for hops in (4, 5, 6):
            fixed = by_key[(hops, "802.11")]
            adaptive = by_key[(hops, "ezflow")]
            assert adaptive.delivered >= 0.9 * fixed.delivered


class TestRegionOccupancy:
    def test_distribution_sums_to_one(self):
        occupancy = region_occupancy(hops=4, slots=20_000, seed=2)
        assert sum(occupancy.values()) == pytest.approx(1.0)

    def test_ezflow_concentrates_in_low_regions(self):
        """Under EZ-flow the walk lives mostly where b1 is small (the
        stabilized regime); with fixed cw the b1>0 half dominates."""
        adaptive = region_occupancy(hops=4, slots=30_000, seed=2)
        fixed = region_occupancy(hops=4, slots=30_000, seed=2, rule=FixedCwRule())
        b1_mass_adaptive = sum(p for s, p in adaptive.items() if s[0])
        b1_mass_fixed = sum(p for s, p in fixed.items() if s[0])
        assert b1_mass_fixed > 0.9
        assert b1_mass_adaptive < b1_mass_fixed


class TestEmpiricalDrift:
    def test_entry_region_has_unit_drift(self):
        """In region A (all relays empty) the only pattern is the
        source injecting: one-step drift is exactly +1."""
        drift = empirical_drift(hops=4, slots=50_000, seed=3)
        assert drift[(False, False, False)] == pytest.approx(1.0)

    def test_ezflow_walk_is_globally_stationary(self):
        """Occupancy-weighted mean drift ~ 0 for a positive-recurrent
        walk: what enters through region A leaves through the draining
        regions."""
        drift = empirical_drift(hops=4, slots=200_000, seed=3)
        occupancy = region_occupancy(hops=4, slots=200_000, seed=3)
        weighted = sum(
            occupancy.get(signature, 0.0) * value for signature, value in drift.items()
        )
        assert abs(weighted) < 0.01

    def test_fixed_cw_walk_accumulates(self):
        """With fixed windows the weighted drift is strictly positive —
        the backlog grows without bound."""
        drift = empirical_drift(hops=4, slots=100_000, seed=3, rule=FixedCwRule())
        occupancy = region_occupancy(
            hops=4, slots=100_000, seed=3, rule=FixedCwRule()
        )
        weighted = sum(
            occupancy.get(signature, 0.0) * value for signature, value in drift.items()
        )
        assert weighted > 0.005
