"""Integration tests: whole-system behaviours the paper reports.

These run short simulations (tens of simulated seconds) and assert the
qualitative shapes — stability, starvation, fairness, adaptivity —
rather than absolute numbers.
"""

import pytest

from repro.core import EZFlowConfig, attach_ezflow
from repro.metrics.fairness import jain_fairness_index
from repro.sim.units import seconds
from repro.topology.linear import linear_chain
from repro.topology.testbed import testbed_network as build_testbed_network

# Heavy end-to-end simulations: excluded from the CI fast lane.
pytestmark = pytest.mark.slow


class TestChainStability:
    def test_ezflow_raises_source_cw_in_unstable_chain(self):
        network = linear_chain(hops=4, seed=3)
        controllers = attach_ezflow(network.nodes)
        network.run(until_us=seconds(150))
        source_cw = controllers[0].current_cw(1)
        relay_cw = controllers[2].current_cw(3)
        assert source_cw > relay_cw  # throttled source, fast relays

    def test_ezflow_keeps_relay_buffers_in_band(self):
        network = linear_chain(hops=4, seed=3)
        attach_ezflow(network.nodes)
        network.run(until_us=seconds(150))
        config = EZFlowConfig()
        for relay in (1, 2, 3):
            # Band is [b_min, b_max]; allow transient excess of a few pkts
            assert network.nodes[relay].total_buffer_occupancy() <= config.b_max + 10

    def test_deterministic_replay(self):
        def run_once():
            network = linear_chain(hops=4, seed=11)
            attach_ezflow(network.nodes)
            network.run(until_us=seconds(30))
            return (
                network.flow("F1").delivered,
                network.trace.counter("mac.data_tx"),
            )

        assert run_once() == run_once()

    def test_seed_changes_trajectory(self):
        results = set()
        for seed in (1, 2):
            network = linear_chain(hops=4, seed=seed)
            network.run(until_us=seconds(30))
            results.add(network.flow("F1").delivered)
        assert len(results) == 2


class TestTestbedShapes:
    def test_parking_lot_starvation_without_ezflow(self):
        network = build_testbed_network(seed=4, flows=("F1", "F2"))
        network.run(until_us=seconds(150))
        start, end = seconds(30), seconds(150)
        f1 = network.flow("F1").throughput_bps(start, end)
        f2 = network.flow("F2").throughput_bps(start, end)
        assert f1 < 0.3 * f2  # long flow starved

    def test_parking_lot_fairness_restored_with_ezflow(self):
        def fairness(ezflow):
            network = build_testbed_network(seed=4, flows=("F1", "F2"))
            if ezflow:
                attach_ezflow(network.nodes)
            network.run(until_us=seconds(200))
            start, end = seconds(60), seconds(200)
            return jain_fairness_index(
                [network.flow(f).throughput_bps(start, end) for f in ("F1", "F2")]
            )

        assert fairness(True) > fairness(False) + 0.1

    def test_f2_first_relay_saturates_then_stabilizes(self):
        from repro.metrics.sampling import BufferSampler

        def mean_n4(ezflow):
            network = build_testbed_network(seed=4, flows=("F2",))
            if ezflow:
                attach_ezflow(network.nodes)
            sampler = BufferSampler(
                network.engine, network.trace, network.nodes, ["N4"], 1.0
            )
            sampler.start()
            network.run(until_us=seconds(150))
            return sampler.mean_occupancy("N4", seconds(60), seconds(150))

        saturated = mean_n4(False)
        stabilized = mean_n4(True)
        assert saturated >= 40
        # The CAA band tops out at b_max = 20; allow convergence
        # transients inside this short horizon but demand a clear drop
        # from the saturated regime.
        assert stabilized <= 35
        assert stabilized < 0.7 * saturated

    def test_hw_cap_limits_requested_window(self):
        network = build_testbed_network(seed=4, flows=("F2",))
        controllers = attach_ezflow(network.nodes)
        network.run(until_us=seconds(200))
        source = network.nodes["N0p"].mac.entities[0]
        # EZ-flow may request any window; the MAC clamps at 2^10.
        assert source.effective_cwmin() <= 1024

    def test_uncapped_hardware_allows_larger_windows(self):
        network = build_testbed_network(seed=4, flows=("F2",), hw_cw_cap=None)
        controllers = attach_ezflow(network.nodes)
        network.run(until_us=seconds(200))
        source = network.nodes["N0p"].mac.entities[0]
        assert source.effective_cwmin() == source.cwmin


class TestAdaptivity:
    def test_ezflow_relaxes_after_congestion_clears(self):
        """Traffic-matrix change: windows ratchet up under load and
        decay back once the flow stops (the paper's period-3 check)."""
        network = linear_chain(hops=4, seed=3, stop_s=60.0)
        controllers = attach_ezflow(network.nodes)
        network.run(until_us=seconds(60))
        cw_loaded = controllers[0].current_cw(1)
        # After the flow stops the relays drain; the source overhears
        # nothing new, so its window freezes — but relays with empty
        # successors decay toward mincw on their own samples.
        network.run(until_us=seconds(90))
        assert cw_loaded >= 16

    def test_overhear_loss_tolerated(self):
        """BOE robustness: with half the overhearings missed, EZ-flow
        still stabilizes the chain (Section 3.2's invulnerability)."""
        network = linear_chain(hops=4, seed=3)
        for node_id in network.nodes:
            network.channel.set_overhear_loss(node_id, 0.5)
        attach_ezflow(network.nodes)
        network.run(until_us=seconds(150))
        assert network.nodes[1].total_buffer_occupancy() <= 30


class TestSimulationModelConsistency:
    def test_event_sim_and_slotted_model_agree_on_instability(self):
        """Both the packet-level simulator and the Section-6 model must
        call the fixed-cw 4-hop chain unstable and the EZ-flow one
        stable."""
        from repro.analysis.slotted import (
            EZFlowRule,
            FixedCwRule,
            ModelConfig,
            SlottedChainModel,
        )

        config = ModelConfig(hops=4)
        fixed = SlottedChainModel(config, rule=FixedCwRule(), seed=5)
        fixed.run(50_000)
        adaptive = SlottedChainModel(config, rule=EZFlowRule(config), seed=5)
        adaptive.run(50_000)
        assert fixed.relay_buffers[0] > 10 * max(adaptive.relay_buffers[0], 1)

        sim_std = linear_chain(hops=4, seed=5)
        sim_std.run(until_us=seconds(100))
        sim_ez = linear_chain(hops=4, seed=5)
        attach_ezflow(sim_ez.nodes)
        sim_ez.run(until_us=seconds(100))
        assert (
            sim_std.nodes[1].total_buffer_occupancy()
            > sim_ez.nodes[1].total_buffer_occupancy()
        )
