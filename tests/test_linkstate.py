"""Per-link loss models: spec parsing, determinism, channel composition."""

from hypothesis import given, settings, strategies as st
import pytest

from repro.phy.channel import Channel, PhyListener
from repro.phy.connectivity import GeometricConnectivity
from repro.phy.linkstate import (
    BernoulliLoss,
    GilbertElliottLoss,
    LossSpec,
    LossSpecError,
    apply_loss_models,
    link_stream_name,
    parse_loss_spec,
)
from repro.phy.propagation import RangeModel
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry


class CountingListener(PhyListener):
    def __init__(self):
        self.received = 0
        self.overheard = 0
        self.errors = 0

    def on_frame_received(self, frame, now):
        self.received += 1

    def on_frame_overheard(self, frame, now):
        self.overheard += 1

    def on_frame_error(self, now):
        self.errors += 1


class FakeFrame:
    def __init__(self, dst):
        self.dst = dst


def build_pair(seed=0):
    engine = Engine()
    conn = GeometricConnectivity(
        {0: (0.0, 0.0), 1: (200.0, 0.0)}, RangeModel(250.0, 550.0)
    )
    channel = Channel(engine, conn, RngRegistry(seed))
    listeners = {i: CountingListener() for i in (0, 1)}
    for i, listener in listeners.items():
        channel.attach(i, listener)
    return engine, channel, listeners


class TestSpecParsing:
    def test_iid(self):
        spec = parse_loss_spec("iid:0.05")
        assert spec == LossSpec(kind="iid", p=0.05)

    def test_ge_defaults_to_classic_gilbert(self):
        spec = parse_loss_spec("ge:0.02:0.25")
        assert spec.kind == "ge"
        assert spec.p == 0.02 and spec.p_bg == 0.25
        assert spec.loss_bad == 1.0 and spec.loss_good == 0.0

    def test_ge_full_form(self):
        spec = parse_loss_spec("ge:0.1:0.2:0.5:0.01")
        assert (spec.p, spec.p_bg, spec.loss_bad, spec.loss_good) == (
            0.1,
            0.2,
            0.5,
            0.01,
        )

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "nope:0.1",
            "iid",
            "iid:0.1:0.2",
            "iid:1.5",
            "ge:0.1",
            "ge:0.1:0.2:0.3:0.4:0.5",
            "ge:0.1:abc",
            "iid:-0.2",
            "ge:0.02::0.5",
            "iid:0.1:",
            "ge:0.1:0.2:",
        ],
    )
    def test_rejects_malformed_specs(self, bad):
        with pytest.raises(LossSpecError):
            parse_loss_spec(bad)

    def test_spec_builds_matching_model(self):
        rng = RngRegistry(1).stream("x")
        assert isinstance(parse_loss_spec("iid:0.3").build(rng), BernoulliLoss)
        assert isinstance(parse_loss_spec("ge:0.1:0.2").build(rng), GilbertElliottLoss)


class TestModelDeterminism:
    def test_bernoulli_deterministic_per_seed_and_link(self):
        def outcomes():
            rng = RngRegistry(42).stream(link_stream_name(0, 1))
            model = BernoulliLoss(rng, 0.3)
            return [model.erased() for _ in range(500)]

        first = outcomes()
        assert first == outcomes()
        assert any(first) and not all(first)

    @given(
        seed=st.integers(0, 2**31 - 1),
        p_gb=st.floats(0.0, 1.0),
        p_bg=st.floats(0.0, 1.0),
        loss_bad=st.floats(0.0, 1.0),
        length=st.integers(1, 300),
    )
    @settings(max_examples=60, deadline=None)
    def test_ge_stream_deterministic_per_seed_and_link(
        self, seed, p_gb, p_bg, loss_bad, length
    ):
        """The property the CI determinism gate rests on: a link's loss
        sequence is a pure function of (master seed, link name)."""

        def outcomes():
            rng = RngRegistry(seed).stream(link_stream_name(3, 7))
            model = GilbertElliottLoss(rng, p_gb, p_bg, loss_bad=loss_bad)
            return [model.erased() for _ in range(length)]

        assert outcomes() == outcomes()

    def test_ge_links_draw_from_independent_streams(self):
        def outcomes(link):
            rng = RngRegistry(7).stream(link_stream_name(*link))
            model = GilbertElliottLoss(rng, 0.3, 0.3, loss_bad=0.7, loss_good=0.1)
            return [model.erased() for _ in range(200)]

        assert outcomes((0, 1)) != outcomes((1, 0))

    def test_ge_classic_gilbert_losses_only_in_bursts(self):
        rng = RngRegistry(3).stream(link_stream_name(0, 1))
        model = GilbertElliottLoss(rng, 0.05, 0.3)  # loss_bad=1, loss_good=0
        outcomes = [model.erased() for _ in range(2000)]
        assert any(outcomes)
        # Bursty: at least one run of >= 2 consecutive losses.
        assert any(a and b for a, b in zip(outcomes, outcomes[1:]))

    def test_ge_stream_position_independent_of_outcomes(self):
        """Exactly two draws per frame whatever the outcomes, so the
        consumed stream position is a pure function of the frame count."""
        a = RngRegistry(5).stream("x")
        b = RngRegistry(5).stream("x")
        model_a = GilbertElliottLoss(a, 0.9, 0.1, loss_bad=1.0, loss_good=0.0)
        model_b = GilbertElliottLoss(b, 0.1, 0.9, loss_bad=0.2, loss_good=0.7)
        for _ in range(100):
            model_a.erased()
            model_b.erased()
        reference = RngRegistry(5).stream("x")
        for _ in range(200):
            reference.random()
        expected = reference.random()
        assert a.random() == b.random() == expected


class TestChannelComposition:
    def test_certain_loss_yields_frame_error_not_reception(self):
        engine, channel, listeners = build_pair()
        channel.set_link_model(0, 1, BernoulliLoss(RngRegistry(1).stream("l"), 1.0))
        channel.transmit(0, FakeFrame(dst=1), 100)
        engine.run()
        # A reception-grade signal that was erased is a PHY decode
        # failure: EIFS applies, exactly like the static loss path.
        assert listeners[1].received == 0
        assert listeners[1].errors == 1

    def test_zero_loss_model_delivers_everything(self):
        engine, channel, listeners = build_pair()
        channel.set_link_model(0, 1, BernoulliLoss(RngRegistry(1).stream("l"), 0.0))
        for _ in range(5):
            channel.transmit(0, FakeFrame(dst=1), 100)
            engine.run()
        assert listeners[1].received == 5
        assert listeners[1].errors == 0

    def test_model_takes_precedence_over_static_loss(self):
        engine, channel, listeners = build_pair()
        channel.set_link_loss(0, 1, 1.0)  # static: always lose
        channel.set_link_model(0, 1, BernoulliLoss(RngRegistry(1).stream("l"), 0.0))
        channel.transmit(0, FakeFrame(dst=1), 100)
        engine.run()
        assert listeners[1].received == 1

    def test_removing_model_restores_static_path(self):
        engine, channel, listeners = build_pair()
        channel.set_link_model(0, 1, BernoulliLoss(RngRegistry(1).stream("l"), 1.0))
        channel.set_link_model(0, 1, None)
        channel.transmit(0, FakeFrame(dst=1), 100)
        engine.run()
        assert listeners[1].received == 1

    def test_model_draws_leave_shared_erasure_stream_untouched(self):
        """Two identical schedules, one with a zero-probability model on
        every link: deliveries, errors, and the shared stream position
        must be identical — the lossless-path byte-identity guarantee."""
        results = []
        for with_models in (False, True):
            engine, channel, listeners = build_pair(seed=9)
            channel.set_link_loss(0, 1, 0.25)  # static draw on the shared stream
            if with_models:
                # Model on the reverse link only: its draws must not
                # shift the forward link's shared-stream draws.
                channel.set_link_model(
                    1, 0, BernoulliLoss(RngRegistry(9).stream("m"), 0.0)
                )
            for _ in range(50):
                channel.transmit(0, FakeFrame(dst=1), 100)
                engine.run()
            results.append((listeners[1].received, listeners[1].errors))
        assert results[0] == results[1]


class TestApplyLossModels:
    def test_models_installed_per_directed_rx_edge(self):
        from repro.topology.meshgen import MeshSpec, build_mesh_network

        network, _topo = build_mesh_network(MeshSpec(kind="grid", nodes=9, seed=1))
        count = apply_loss_models(network, "iid:0.1")
        directed_rx = sum(
            len(network.connectivity.receivers_of(n))
            for n in network.connectivity.nodes()
        )
        assert count == directed_rx
        assert len(network.channel._link_models) == directed_rx

    def test_zero_probability_models_do_not_change_results(self):
        from repro.experiments import meshgen

        plain = meshgen.run(nodes=9, flows=2, duration_s=3.0, warmup_s=1.0)
        zero = meshgen.run(
            nodes=9, flows=2, duration_s=3.0, warmup_s=1.0, loss="iid:0.0"
        )
        assert (
            plain.find_table("Per-flow goodput").rows
            == zero.find_table("Per-flow goodput").rows
        )
        assert plain.find_table("Summary").rows == zero.find_table("Summary").rows

    def test_real_loss_lowers_delivery(self):
        from repro.experiments import meshgen

        plain = meshgen.run(nodes=9, flows=2, duration_s=4.0, warmup_s=1.0)
        lossy = meshgen.run(
            nodes=9, flows=2, duration_s=4.0, warmup_s=1.0, loss="iid:0.4"
        )
        assert (
            lossy.find_table("Summary").rows[0][1]
            < plain.find_table("Summary").rows[0][1]
        )
