"""Tests for the Foster-Lyapunov drift machinery (Theorem 1)."""

import pytest

from repro.analysis.lyapunov import (
    THEOREM1_K,
    DriftReport,
    exact_k_step_drift,
    k_step_drift,
    representative_state,
    sum_lyapunov,
    verify_theorem1,
)
from repro.analysis.regions import region_of
from repro.analysis.slotted import ModelConfig


class TestLyapunovFunction:
    def test_sum_function(self):
        assert sum_lyapunov([1, 2, 3]) == 6.0

    def test_empty(self):
        assert sum_lyapunov([]) == 0.0


class TestRepresentativeStates:
    def test_states_land_in_their_regions(self):
        for region in THEOREM1_K:
            state = representative_state(region)
            assert region_of(*state) == region

    def test_high_must_exceed_bmax(self):
        with pytest.raises(ValueError):
            representative_state("B", high=10.0)


class TestDrift:
    def test_region_f_one_step_exact(self):
        """In F with the feeder window maxed the sink drains ~surely."""
        drift = exact_k_step_drift((60.0, 0.0, 60.0), k=1)
        assert drift == pytest.approx(-1.0, abs=0.01)

    def test_region_h_one_step_negative(self):
        drift = exact_k_step_drift((60.0, 60.0, 60.0), k=1)
        assert drift < -0.4

    def test_region_d_two_step(self):
        drift = exact_k_step_drift((0.0, 0.0, 60.0), k=2)
        assert drift == pytest.approx(-0.5, abs=0.01)

    def test_exact_matches_monte_carlo_where_large(self):
        exact = exact_k_step_drift((60.0, 0.0, 60.0), k=1)
        sampled = k_step_drift((60.0, 0.0, 60.0), k=1, trials=3000, seed=1)
        assert sampled == pytest.approx(exact, abs=0.05)

    def test_buffers_length_validated(self):
        with pytest.raises(ValueError):
            k_step_drift((1.0, 2.0), k=1)


class TestTheorem1:
    def test_all_regions_negative(self):
        reports = verify_theorem1(trials=300, seed=2)
        assert len(reports) == 7
        for report in reports:
            assert report.negative, f"region {report.region} drift {report.drift}"

    def test_paper_k_values(self):
        assert THEOREM1_K == {"B": 25, "C": 4, "D": 2, "E": 2, "F": 1, "G": 3, "H": 1}

    def test_report_fields(self):
        report = DriftReport("F", (60.0, 0.0, 60.0), 1, -0.9)
        assert report.negative
        assert not DriftReport("F", (60.0, 0.0, 60.0), 1, 0.1).negative
