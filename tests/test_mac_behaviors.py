"""Deeper MAC behaviour tests: EIFS, hidden terminals, timing, capture
interplay — the micro-mechanics the turbulence phenomena rest on."""

import pytest

from repro.mac.dcf import Dcf, DcfConfig
from repro.mac.queues import FifoQueue
from repro.net.packet import Packet
from repro.phy.channel import Channel
from repro.phy.connectivity import ExplicitConnectivity, GeometricConnectivity
from repro.phy.propagation import RangeModel
from repro.phy.rates import DSSS_1MBPS, DSSS_11MBPS
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.sim.units import seconds


def build(positions, sense=550.0, seed=0, config=None):
    engine = Engine()
    conn = GeometricConnectivity(positions, RangeModel(250.0, sense))
    channel = Channel(engine, conn, RngRegistry(seed))
    macs = {
        node: Dcf(engine, channel, node, config or DcfConfig(), RngRegistry(seed + 1))
        for node in positions
    }
    return engine, channel, macs


class TestTiming:
    def test_80211b_constants(self):
        assert DSSS_1MBPS.slot_time_us == 20
        assert DSSS_1MBPS.sifs_us == 10
        assert DSSS_1MBPS.difs_us == 50
        assert DSSS_1MBPS.plcp_overhead_us() == 192

    def test_frame_time_1mbps(self):
        # 1028-byte MAC frame = 8224 bits at 1 Mb/s + 192 us PLCP
        assert DSSS_1MBPS.frame_tx_time_us(1028) == 8416

    def test_ack_time(self):
        # 14 bytes = 112 bits + 192 us PLCP
        assert DSSS_1MBPS.ack_tx_time_us() == 304

    def test_eifs_is_sifs_ack_difs(self):
        assert DSSS_1MBPS.eifs_us == 10 + 304 + 50

    def test_11mbps_payload_faster(self):
        assert DSSS_11MBPS.frame_tx_time_us(1028) < DSSS_1MBPS.frame_tx_time_us(1028)

    def test_single_link_saturation_throughput(self):
        """The analytic per-packet exchange time bounds the measured
        single-link rate: DIFS + backoff + DATA + SIFS + ACK."""
        positions = {0: (0.0, 0.0), 1: (200.0, 0.0)}
        engine, channel, macs = build(positions, seed=2)
        received = []
        macs[1].on_data_received = lambda f, now: received.append(now)
        queue = FifoQueue(capacity=1000)
        entity = macs[0].add_entity("q", queue, successor=1)
        for seq in range(500):
            queue.push(Packet(flow_id="F", seq=seq, src=0, dst=1))
        entity.notify_enqueue()
        engine.run(until=seconds(2))
        rate_kbps = len(received) * 8000 / 2 / 1000
        # exchange = 50 + ~150 + 8416 + 10 + 304 ~= 8930 us -> ~896 kb/s
        assert 850 < rate_kbps < 920


class TestEifs:
    def test_error_then_eifs_deferral(self):
        positions = {0: (0.0, 0.0), 1: (200.0, 0.0)}
        engine, channel, macs = build(positions)
        macs[0].on_frame_error(engine.now)
        assert macs[0].current_ifs_us() == DSSS_1MBPS.eifs_us

    def test_successful_reception_clears_eifs(self):
        positions = {0: (0.0, 0.0), 1: (200.0, 0.0)}
        engine, channel, macs = build(positions)
        macs[0].on_frame_error(engine.now)
        from repro.mac.frames import make_data_frame

        frame = make_data_frame(1, 0, Packet(flow_id="F", seq=1, src=1, dst=0), 1)
        macs[0].on_frame_received(frame, engine.now)
        assert macs[0].current_ifs_us() == DSSS_1MBPS.difs_us

    def test_overheard_frame_clears_eifs(self):
        positions = {0: (0.0, 0.0), 1: (200.0, 0.0), 2: (400.0, 0.0)}
        engine, channel, macs = build(positions)
        macs[0].on_frame_error(engine.now)
        from repro.mac.frames import make_data_frame

        frame = make_data_frame(1, 2, Packet(flow_id="F", seq=1, src=1, dst=2), 1)
        macs[0].on_frame_overheard(frame, engine.now)
        assert macs[0].current_ifs_us() == DSSS_1MBPS.difs_us


class TestHiddenTerminals:
    def chain4(self, sense=350.0, seed=3):
        """4 nodes at 200 m spacing with 1-hop sensing: 0 and 2 hidden."""
        positions = {i: (i * 200.0, 0.0) for i in range(4)}
        return build(positions, sense=sense, seed=seed)

    def test_hidden_senders_collide_at_common_receiver(self):
        engine, channel, macs = self.chain4()
        q0, q2 = FifoQueue(capacity=500), FifoQueue(capacity=500)
        e0 = macs[0].add_entity("q0", q0, successor=1)
        e2 = macs[2].add_entity("q2", q2, successor=1)
        for seq in range(200):
            q0.push(Packet(flow_id="A", seq=seq, src=0, dst=1))
            q2.push(Packet(flow_id="B", seq=seq, src=2, dst=1))
        e0.notify_enqueue()
        e2.notify_enqueue()
        engine.run(until=seconds(3))
        total_attempts = e0.tx_attempts + e2.tx_attempts
        total_successes = e0.tx_successes + e2.tx_successes
        # Saturated hidden senders with 8.4 ms frames collide massively.
        assert total_successes < 0.5 * total_attempts

    def test_sensed_senders_rarely_collide(self):
        engine, channel, macs = self.chain4(sense=550.0)
        q0, q2 = FifoQueue(capacity=500), FifoQueue(capacity=500)
        e0 = macs[0].add_entity("q0", q0, successor=1)
        e2 = macs[2].add_entity("q2", q2, successor=1)
        for seq in range(200):
            q0.push(Packet(flow_id="A", seq=seq, src=0, dst=1))
            q2.push(Packet(flow_id="B", seq=seq, src=2, dst=1))
        e0.notify_enqueue()
        e2.notify_enqueue()
        engine.run(until=seconds(3))
        total_attempts = e0.tx_attempts + e2.tx_attempts
        total_successes = e0.tx_successes + e2.tx_successes
        # With carrier sensing, the channel splits cleanly.
        assert total_successes > 0.9 * total_attempts

    def test_cw_growth_under_hidden_collisions(self):
        engine, channel, macs = self.chain4()
        q0, q2 = FifoQueue(capacity=500), FifoQueue(capacity=500)
        e0 = macs[0].add_entity("q0", q0, successor=1)
        e2 = macs[2].add_entity("q2", q2, successor=1)
        peak_cw = [16]
        original = e0._draw_backoff

        def spy():
            peak_cw[0] = max(peak_cw[0], e0.cw)
            original()

        e0._draw_backoff = spy
        for seq in range(100):
            q0.push(Packet(flow_id="A", seq=seq, src=0, dst=1))
            q2.push(Packet(flow_id="B", seq=seq, src=2, dst=1))
        e0.notify_enqueue()
        e2.notify_enqueue()
        engine.run(until=seconds(2))
        assert peak_cw[0] >= 64  # exponential backoff engaged


class TestExplicitConnectivityMac:
    def test_sense_only_interference_is_captured_through(self):
        """A decodable frame survives concurrent sense-only energy —
        the capture rule on explicit maps."""
        conn = ExplicitConnectivity(
            ["a", "b", "far"],
            rx_edges=[("a", "b")],
            sense_edges=[("far", "b")],
        )
        engine = Engine()
        channel = Channel(engine, conn, RngRegistry(0))
        received = []

        class Sink:
            def on_medium_busy(self, now):
                pass

            def on_medium_idle(self, now):
                pass

            def on_frame_received(self, frame, now):
                received.append(frame)

            def on_frame_overheard(self, frame, now):
                pass

            def on_frame_error(self, now):
                pass

        for node in ("a", "b", "far"):
            channel.attach(node, Sink())

        class F:
            def __init__(self, dst):
                self.dst = dst

        channel.transmit("a", F("b"), 100)
        channel.transmit("far", F("nowhere"), 100)
        engine.run()
        assert len(received) == 1
