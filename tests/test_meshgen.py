"""Tests for the generated-topology subsystem (meshgen + workloads)."""

import filecmp
import json
import os
from collections import deque

import pytest

from repro.experiments.export import export_records
from repro.experiments.runner import SweepRunner, _grid_requests
from repro.experiments.specs import get_spec
from repro.phy.connectivity import GeometricConnectivity
from repro.phy.propagation import RangeModel, distance
from repro.sim.units import seconds
from repro.topology.meshgen import (
    MESH_KINDS,
    MeshGenError,
    MeshSpec,
    MeshTopology,
    build_mesh_network,
    generate_topology,
    is_connected,
    mean_degree,
)
from repro.traffic.workloads import WorkloadSpec, attach_workload


def independently_connected(positions, tx_range_m=250.0):
    """Reference BFS over raw positions (no ConnectivityMap involved)."""
    ids = sorted(positions)
    seen = {ids[0]}
    frontier = deque(seen)
    while frontier:
        node = frontier.popleft()
        for other in ids:
            if other not in seen and distance(positions[node], positions[other]) <= tx_range_m:
                seen.add(other)
                frontier.append(other)
    return len(seen) == len(ids)


class TestGenerators:
    @pytest.mark.parametrize("kind", MESH_KINDS)
    def test_connected_across_seed_sweep(self, kind):
        """Every generated graph must be connected, for every kind and
        a sweep of seeds — checked against an independent BFS."""
        for seed in range(25):
            topology = generate_topology(MeshSpec(kind=kind, nodes=12, seed=seed))
            assert len(topology.positions) == 12
            assert independently_connected(topology.positions), (kind, seed)

    @pytest.mark.parametrize("kind", MESH_KINDS)
    def test_deterministic_positions(self, kind):
        spec = MeshSpec(kind=kind, nodes=14, seed=7)
        first = generate_topology(spec)
        second = generate_topology(spec)
        assert first.positions == second.positions
        assert first.gateways == second.gateways
        assert first.attempts == second.attempts

    def test_seeds_give_distinct_meshes(self):
        a = generate_topology(MeshSpec(kind="mesh", nodes=12, seed=1))
        b = generate_topology(MeshSpec(kind="mesh", nodes=12, seed=2))
        assert a.positions != b.positions

    def test_mesh_rejection_resampling_reports_attempts(self):
        """Sparse meshes need resampling for some seed; the attempt
        count must be recorded so exports can audit generation cost."""
        attempts = [
            generate_topology(MeshSpec(kind="mesh", nodes=16, seed=seed)).attempts
            for seed in range(10)
        ]
        assert all(a >= 1 for a in attempts)
        assert any(a > 1 for a in attempts)

    def test_impossible_density_raises(self):
        with pytest.raises(MeshGenError):
            generate_topology(
                MeshSpec(kind="mesh", nodes=30, density=0.05, seed=0, max_attempts=3)
            )

    def test_grid_is_lattice(self):
        topology = generate_topology(MeshSpec(kind="grid", nodes=9, seed=0))
        xs = sorted({p[0] for p in topology.positions.values()})
        ys = sorted({p[1] for p in topology.positions.values()})
        assert xs == [0.0, 200.0, 400.0]
        assert ys == [0.0, 200.0, 400.0]

    def test_tree_parent_links_within_reception(self):
        spec = MeshSpec(kind="tree", nodes=15, gateways=3, seed=4)
        topology = generate_topology(spec)
        assert topology.gateways == [0, 1, 2]
        connectivity = GeometricConnectivity(topology.positions, RangeModel())
        # Jitter rotates children around parents, so every routed hop
        # still decodes.
        for node in topology.positions:
            if node in topology.gateways:
                continue
            path = topology.route_to_gateway(node)
            for here, nxt in zip(path, path[1:]):
                assert connectivity.can_receive(nxt, here)

    def test_spec_validation(self):
        with pytest.raises(MeshGenError):
            MeshSpec(kind="torus")
        with pytest.raises(MeshGenError):
            MeshSpec(nodes=1)
        with pytest.raises(MeshGenError):
            MeshSpec(nodes=4, gateways=4)
        with pytest.raises(MeshGenError):
            MeshSpec(density=0)

    def test_is_connected_detects_partition(self):
        positions = {0: (0.0, 0.0), 1: (100.0, 0.0), 2: (5000.0, 0.0)}
        assert not is_connected(GeometricConnectivity(positions, RangeModel()))
        assert mean_degree(GeometricConnectivity(positions, RangeModel())) > 0


class TestRouting:
    @pytest.mark.parametrize("kind", MESH_KINDS)
    def test_every_node_routes_to_every_gateway(self, kind):
        network, topology = build_mesh_network(MeshSpec(kind=kind, nodes=16, seed=3))
        for gateway in topology.gateways:
            for node in topology.positions:
                if node == gateway:
                    continue
                path = network.routing.path(node, gateway)
                assert path[0] == node and path[-1] == gateway
                assert len(path) - 1 == topology.depths[gateway][node]

    def test_routes_are_shortest_paths(self):
        network, topology = build_mesh_network(MeshSpec(kind="mesh", nodes=16, seed=3))
        connectivity = network.connectivity
        # BFS depth equality is checked above; also verify hop-by-hop
        # monotonicity: every next hop is strictly closer to the root.
        for gateway in topology.gateways:
            depths = topology.depths[gateway]
            for node, parent in topology.parents[gateway].items():
                assert depths[parent] == depths[node] - 1
                assert connectivity.can_receive(parent, node)

    def test_nearest_gateway_assignment(self):
        _, topology = build_mesh_network(MeshSpec(kind="grid", nodes=16, seed=0))
        for node, gateway in topology.nearest.items():
            best = min(topology.depths[gw][node] for gw in topology.gateways)
            assert topology.depths[gateway][node] == best


class TestWorkloads:
    def build(self, kind):
        network, topology = build_mesh_network(MeshSpec(kind="grid", nodes=9, seed=0))
        sources = [n for n in sorted(topology.nearest) if n not in topology.gateways][:2]
        endpoints = [(src, topology.nearest[src]) for src in sources]
        attached = attach_workload(
            network, endpoints, WorkloadSpec(kind=kind, rate_bps=150_000.0)
        )
        return network, attached

    @pytest.mark.parametrize("kind", ["cbr", "onoff", "windowed", "mixed"])
    def test_all_kinds_deliver(self, kind):
        network, attached = self.build(kind)
        network.run(until_us=seconds(10))
        for item in attached:
            assert item.flow.generated > 0, item.kind
            assert item.flow.delivered > 0, item.kind

    def test_mixed_cycles_kinds(self):
        _, attached = self.build("mixed")
        assert [item.kind for item in attached] == ["cbr", "onoff"]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSpec(kind="torrent")

    def test_windowed_reverse_route_installed(self):
        network, attached = self.build("windowed")
        item = attached[0]
        assert network.routing.has_route(item.flow.dst, item.flow.src)


class TestMeshgenExperiment:
    def test_registered_with_sweep_defaults(self):
        spec = get_spec("meshgen")
        assert dict(spec.sweep_defaults)["topology"] == ("mesh", "grid", "tree")
        assert "algorithm" in spec.param_names()

    def test_unknown_algorithm_rejected(self):
        from repro.experiments import meshgen

        with pytest.raises(ValueError):
            meshgen.run(algorithm="tcp", duration_s=1.0)

    def test_tables_and_series_shape(self):
        from repro.experiments import meshgen

        result = meshgen.run(
            nodes=9, topology="grid", flows=2, duration_s=5.0, warmup_s=1.0
        )
        summary = result.find_table("Summary").rows[0]
        jain, aggregate, ratio, backlog = summary
        assert 0.0 < jain <= 1.0
        assert aggregate > 0.0
        assert 0.0 < ratio <= 1.0
        ring_table = result.find_table("Queue occupancy by hop")
        assert ring_table.rows[0][0] == 0  # gateways form ring 0
        assert sum(row[1] for row in ring_table.rows) == 9
        assert any(name.startswith("occupancy.hop") for name in result.series)

    def test_connected_is_exported(self):
        from repro.experiments import meshgen

        result = meshgen.run(
            nodes=9, topology="mesh", flows=2, duration_s=2.0, warmup_s=0.5
        )
        shape = result.find_table("Topology").rows[0]
        assert shape[-1] == "yes"


class TestMeshgenDeterminism:
    GRID = {
        "nodes": [9],
        "topology": ["mesh", "grid"],
        "algorithm": ["none", "ezflow"],
        "flows": [2],
        "duration_s": [3.0],
        "warmup_s": [1.0],
    }

    def test_parallel_and_serial_exports_byte_identical(self, tmp_path):
        """The acceptance guarantee: same (seed, params) exports the
        same bytes whatever the worker count."""
        requests = _grid_requests("meshgen", self.GRID)
        assert len(requests) == 4
        serial_dir, parallel_dir = tmp_path / "serial", tmp_path / "parallel"
        os.makedirs(serial_dir)
        os.makedirs(parallel_dir)
        export_records(SweepRunner(jobs=1).run(requests), str(serial_dir))
        export_records(SweepRunner(jobs=2).run(requests), str(parallel_dir))

        def assert_identical(cmp):
            assert not cmp.left_only and not cmp.right_only
            # manifest.json's timing section is the one wall-clock
            # carrier; everything else must match byte-for-byte.
            for name in cmp.common_files:
                left = os.path.join(cmp.left, name)
                right = os.path.join(cmp.right, name)
                if name == "manifest.json":
                    with open(left) as handle:
                        left_manifest = json.load(handle)
                    with open(right) as handle:
                        right_manifest = json.load(handle)
                    left_manifest.pop("timing")
                    right_manifest.pop("timing")
                    assert left_manifest == right_manifest
                else:
                    assert filecmp.cmp(left, right, shallow=False), name
            assert not [f for f in cmp.diff_files if f != "manifest.json"]
            for sub in cmp.subdirs.values():
                assert_identical(sub)

        assert_identical(filecmp.dircmp(str(serial_dir), str(parallel_dir)))
        with open(os.path.join(str(serial_dir), "manifest.json")) as handle:
            manifest = json.load(handle)
        assert manifest["experiments"] == ["meshgen"]
        assert len(manifest["runs"]) == 4

    def test_cli_sweep_expands_default_topology_axis(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        code = main(
            [
                "sweep",
                "meshgen",
                "--set",
                "nodes=9",
                "--set",
                "flows=2",
                "--set",
                "duration_s=2",
                "--set",
                "warmup_s=0.5",
                "--out",
                str(tmp_path),
            ]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "3 run(s)" in err  # mesh, grid, tree from the default axis
        with open(os.path.join(str(tmp_path), "manifest.json")) as handle:
            manifest = json.load(handle)
        kinds = sorted(run["kwargs"]["topology"] for run in manifest["runs"])
        assert kinds == ["grid", "mesh", "tree"]

    def test_cli_pinned_topology_wins_over_default_axis(self, capsys):
        from repro.experiments.__main__ import main

        code = main(
            [
                "sweep",
                "meshgen",
                "--set",
                "topology=grid",
                "--set",
                "nodes=9",
                "--set",
                "flows=2",
                "--set",
                "duration_s=1",
                "--set",
                "warmup_s=0.2",
            ]
        )
        assert code == 0
        assert "1 run(s)" in capsys.readouterr().err


class TestLargeTopologies:
    """Connectivity + routing invariants at sweep scale (49/100 nodes).

    These are generation/routing checks only (no traffic), so they stay
    in the fast lane even at 100 nodes. Density 2.5 at 100 nodes keeps
    the random geometric graph above its connectivity threshold (~ln n
    expected neighbours); 1.5 suffices at 49.
    """

    LARGE_SPECS = (
        MeshSpec(kind="mesh", nodes=49, density=1.5, seed=11),
        MeshSpec(kind="mesh", nodes=100, density=2.5, seed=11),
        MeshSpec(kind="grid", nodes=49, seed=3),
        MeshSpec(kind="grid", nodes=100, seed=3),
        MeshSpec(kind="tree", nodes=49, gateways=3, seed=5),
        MeshSpec(kind="tree", nodes=100, gateways=4, seed=5),
    )

    @pytest.mark.parametrize(
        "spec", LARGE_SPECS, ids=[f"{s.kind}{s.nodes}" for s in LARGE_SPECS]
    )
    def test_connected_and_fully_routed(self, spec):
        topology = generate_topology(spec)
        assert len(topology.positions) == spec.nodes
        assert independently_connected(topology.positions)
        # Every non-gateway node has a loop-free shortest path to every
        # gateway, with hop counts consistent along the path.
        for gateway in topology.gateways:
            depths = topology.depths[gateway]
            assert set(depths) == set(topology.positions)
            for node in topology.positions:
                if node == gateway:
                    continue
                path = topology.route_to_gateway(node, gateway)
                assert path[0] == node and path[-1] == gateway
                assert len(set(path)) == len(path), "routing loop"
                assert len(path) - 1 == depths[node]
                # Depth decreases by exactly one per hop (BFS tree).
                for here, nxt in zip(path, path[1:]):
                    assert depths[nxt] == depths[here] - 1

    @pytest.mark.parametrize(
        "spec", LARGE_SPECS, ids=[f"{s.kind}{s.nodes}" for s in LARGE_SPECS]
    )
    def test_routes_follow_reception_edges(self, spec):
        """Every installed hop is a genuine reception edge (both the
        map's view and the raw distance predicate agree)."""
        topology = generate_topology(spec)
        connectivity = topology.connectivity
        ranges = RangeModel(spec.tx_range_m, spec.sense_range_m)
        for gateway in topology.gateways:
            for node, parent in topology.parents[gateway].items():
                assert connectivity.can_receive(parent, node)
                d = distance(topology.positions[node], topology.positions[parent])
                assert ranges.can_receive(d)

    def test_nearest_gateway_assignment_is_minimal(self):
        topology = generate_topology(MeshSpec(kind="mesh", nodes=49, seed=11))
        for node, gateway in topology.nearest.items():
            best = min(topology.depths[gw][node] for gw in topology.gateways)
            assert topology.depths[gateway][node] == best

    def test_mesh_100_network_builds_and_carries_traffic(self):
        """End-to-end smoke at 100 nodes: build, route, deliver."""
        network, topology = build_mesh_network(
            MeshSpec(kind="mesh", nodes=100, density=2.5, seed=11)
        )
        source = next(
            n for n in sorted(topology.positions) if n not in topology.gateways
        )
        gateway = topology.nearest[source]
        attached = attach_workload(
            network,
            [(source, gateway)],
            WorkloadSpec(kind="cbr", rate_bps=100_000.0),
            flow_prefix="L",
        )
        network.run(until_us=seconds(3.0))
        assert attached[0].flow.delivered > 0
