"""Tests for fairness, summary statistics and buffer sampling."""

import pytest
from hypothesis import given, strategies as st

from repro.metrics.fairness import jain_fairness_index
from repro.metrics.sampling import BufferSampler
from repro.metrics.stats import mean, percentile, stddev, summarize_flow
from repro.net.flow import Flow
from repro.net.packet import Packet
from repro.sim.units import seconds
from repro.topology.linear import linear_chain


class TestJainIndex:
    def test_equal_throughputs_perfectly_fair(self):
        assert jain_fairness_index([100, 100, 100]) == pytest.approx(1.0)

    def test_one_flow_gets_everything(self):
        assert jain_fairness_index([300, 0, 0]) == pytest.approx(1 / 3)

    def test_paper_example_range(self):
        # Parking-lot 802.11: 7 vs 143 kb/s -> FI about 0.55
        assert jain_fairness_index([7, 143]) == pytest.approx(0.55, abs=0.02)

    def test_two_equal_flows(self):
        assert jain_fairness_index([71, 110]) > 0.9

    def test_empty_is_one(self):
        assert jain_fairness_index([]) == 1.0

    def test_all_zero_is_one(self):
        assert jain_fairness_index([0, 0]) == 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            jain_fairness_index([-1, 1])

    @given(st.lists(st.floats(0.001, 1000), min_size=1, max_size=20))
    def test_property_bounds(self, throughputs):
        fi = jain_fairness_index(throughputs)
        assert 1 / len(throughputs) - 1e-9 <= fi <= 1.0 + 1e-9

    @given(st.floats(0.001, 1000), st.integers(1, 20))
    def test_property_equal_flows_are_fair(self, value, count):
        assert jain_fairness_index([value] * count) == pytest.approx(1.0)

    @given(st.lists(st.floats(0.001, 1000), min_size=1, max_size=20), st.floats(0.1, 10))
    def test_property_scale_invariant(self, throughputs, scale):
        fi1 = jain_fairness_index(throughputs)
        fi2 = jain_fairness_index([x * scale for x in throughputs])
        assert fi1 == pytest.approx(fi2)


class TestStats:
    def test_mean_empty(self):
        assert mean([]) == 0.0

    def test_mean(self):
        assert mean([1, 2, 3]) == 2.0

    def test_stddev_constant_zero(self):
        assert stddev([5, 5, 5]) == 0.0

    def test_stddev_single_sample_zero(self):
        assert stddev([5]) == 0.0

    def test_stddev_known_value(self):
        assert stddev([2, 4, 4, 4, 5, 5, 7, 9]) == pytest.approx(2.0)

    def test_percentile_bounds(self):
        values = list(range(101))
        assert percentile(values, 0) == 0
        assert percentile(values, 100) == 100
        assert percentile(values, 50) == 50

    def test_percentile_interpolates(self):
        assert percentile([0, 10], 50) == 5.0

    def test_percentile_empty(self):
        assert percentile([], 50) == 0.0

    def test_percentile_validates(self):
        with pytest.raises(ValueError):
            percentile([1], 101)

    def test_summarize_flow(self):
        flow = Flow("F", 0, 1)
        for i in range(20):
            p = Packet(flow_id="F", seq=i, src=0, dst=1, size_bytes=1000, created_at=0)
            flow.note_delivered(p, seconds(i * 0.5))
        stats = summarize_flow(flow, 0, seconds(10), bin_s=2.0)
        assert stats.mean_throughput_kbps == pytest.approx(16.0)
        assert stats.delivered == 20
        assert "F" in str(stats)


class TestBufferSampler:
    def test_samples_at_interval(self):
        network = linear_chain(hops=3, seed=1)
        sampler = BufferSampler(
            network.engine, network.trace, network.nodes, [1, 2], interval_s=1.0
        )
        sampler.start()
        network.run(until_us=seconds(10))
        assert len(sampler.series_for(1)) == 11  # t = 0..10 inclusive

    def test_mean_occupancy_window(self):
        network = linear_chain(hops=3, seed=1)
        sampler = BufferSampler(
            network.engine, network.trace, network.nodes, [1], interval_s=1.0
        )
        sampler.start()
        network.run(until_us=seconds(30))
        value = sampler.mean_occupancy(1, seconds(5), seconds(30))
        assert 0.0 <= value <= 50.0

    def test_double_start_rejected(self):
        network = linear_chain(hops=3, seed=1)
        sampler = BufferSampler(network.engine, network.trace, network.nodes, [1])
        sampler.start()
        with pytest.raises(RuntimeError):
            sampler.start()

    def test_forwarding_only_mode(self):
        network = linear_chain(hops=3, seed=1)
        sampler = BufferSampler(
            network.engine,
            network.trace,
            network.nodes,
            [0],
            interval_s=1.0,
            forwarding_only=True,
        )
        sampler.start()
        network.run(until_us=seconds(5))
        # The source has no forwarding queue: all samples zero.
        assert all(v == 0 for v in sampler.series_for(0).values)
