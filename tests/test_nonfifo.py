"""Tests for the non-FIFO (opportunistic forwarding) BOE extension."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.nonfifo import NonFifoBOE


class TestBasics:
    def test_fifo_forwarding_matches_plain_boe(self):
        boe = NonFifoBOE("next")
        for checksum in (1, 2, 3, 4):
            boe.note_sent(checksum)
        assert boe.note_overheard(1) == 3
        assert boe.note_overheard(2) == 2

    def test_out_of_order_forwarding_keeps_earlier_entries(self):
        boe = NonFifoBOE("next")
        for checksum in (1, 2, 3):
            boe.note_sent(checksum)
        # The successor opportunistically forwards packet 2 first.
        assert boe.note_overheard(2) == 1
        # Packet 1 is still tracked (it may still be queued).
        assert boe.note_overheard(1) == 1
        assert boe.pending == 1

    def test_unmatched_returns_none(self):
        boe = NonFifoBOE("next")
        boe.note_sent(1)
        assert boe.note_overheard(999) is None
        assert boe.overheard_unmatched == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            NonFifoBOE("next", history_size=1)
        with pytest.raises(ValueError):
            NonFifoBOE("next", smoothing_window=0)


class TestSmoothing:
    def test_no_estimate_before_samples(self):
        assert NonFifoBOE("next").smoothed_estimate() is None

    def test_median_robust_to_reordering_noise(self):
        boe = NonFifoBOE("next", smoothing_window=11)
        # Successor holds ~5 packets; occasional reordering produces
        # outlier gaps. Feed gaps directly through the overhear path.
        for i in range(100):
            boe.note_sent(i)
        rng = random.Random(1)
        queue = list(range(100))
        for _ in range(60):
            # forward mostly head-of-line, sometimes the 10th-in-line
            index = 0 if rng.random() < 0.8 else min(9, len(queue) - 1)
            boe.note_overheard(queue.pop(index))
        smoothed = boe.smoothed_estimate()
        assert smoothed is not None
        # The median tracks the bulk (large outliers do not dominate).
        raw_recent = list(boe._recent)
        assert smoothed <= sorted(raw_recent)[len(raw_recent) // 2] + 1

    def test_smoothed_callbacks_fire(self):
        boe = NonFifoBOE("next", smoothing_window=3)
        seen = []
        boe.smoothed_callbacks.append(seen.append)
        boe.note_sent(1)
        boe.note_sent(2)
        boe.note_overheard(1)
        assert len(seen) == 1


class TestProperties:
    @given(st.lists(st.integers(0, 0xFFFF), min_size=2, max_size=80, unique=True), st.data())
    @settings(max_examples=50, deadline=None)
    def test_property_any_forwarding_order_gives_valid_gaps(self, checksums, data):
        boe = NonFifoBOE("next")
        for checksum in checksums:
            boe.note_sent(checksum)
        order = data.draw(st.permutations(checksums))
        for checksum in order:
            gap = boe.note_overheard(checksum)
            assert gap is not None
            assert 0 <= gap < len(checksums)
        assert boe.pending == 0

    @given(st.lists(st.integers(0, 0xFFFF), max_size=150))
    def test_property_pending_bounded(self, checksums):
        boe = NonFifoBOE("next", history_size=40)
        for checksum in checksums:
            boe.note_sent(checksum)
        assert boe.pending <= 40
