"""Tests for packets, checksums and static routing."""

import pytest
from hypothesis import given, strategies as st

from repro.net.packet import Packet, checksum16
from repro.net.routing import RoutingError, StaticRouting


class TestChecksum:
    def test_deterministic(self):
        assert checksum16("F1", 7) == checksum16("F1", 7)

    def test_sixteen_bit_range(self):
        for seq in range(200):
            assert 0 <= checksum16("F", seq) <= 0xFFFF

    def test_varies_with_inputs(self):
        values = {checksum16("F", seq) for seq in range(100)}
        assert len(values) > 90  # collisions possible but rare

    @given(st.text(max_size=10), st.integers(0, 10**9))
    def test_property_in_range(self, flow, seq):
        assert 0 <= checksum16(flow, seq) <= 0xFFFF


class TestPacket:
    def test_checksum_auto_assigned(self):
        p = Packet(flow_id="F", seq=1, src=0, dst=3)
        assert p.checksum == checksum16("F", 1)

    def test_explicit_checksum_kept(self):
        p = Packet(flow_id="F", seq=1, src=0, dst=3, checksum=0xBEEF)
        assert p.checksum == 0xBEEF

    def test_delay_none_until_delivered(self):
        p = Packet(flow_id="F", seq=1, src=0, dst=3, created_at=100)
        assert p.delay_us is None
        p.delivered_at = 300
        assert p.delay_us == 200

    def test_path_delay_requires_first_tx(self):
        p = Packet(flow_id="F", seq=1, src=0, dst=3, created_at=0)
        p.delivered_at = 500
        assert p.path_delay_us is None
        p.first_tx_at = 100
        assert p.path_delay_us == 400

    def test_positive_size_required(self):
        with pytest.raises(ValueError):
            Packet(flow_id="F", seq=1, src=0, dst=3, size_bytes=0)

    def test_default_size_1000(self):
        assert Packet(flow_id="F", seq=1, src=0, dst=3).size_bytes == 1000


class TestStaticRouting:
    def test_install_path_and_follow(self):
        routing = StaticRouting()
        routing.install_path([0, 1, 2, 3])
        assert routing.next_hop(0, 3) == 1
        assert routing.next_hop(1, 3) == 2
        assert routing.next_hop(2, 3) == 3

    def test_path_materialization(self):
        routing = StaticRouting()
        routing.install_path(["a", "b", "c"])
        assert routing.path("a", "c") == ["a", "b", "c"]

    def test_missing_route_raises(self):
        with pytest.raises(RoutingError):
            StaticRouting().next_hop(0, 9)

    def test_has_route(self):
        routing = StaticRouting()
        routing.install_path([0, 1])
        assert routing.has_route(0, 1)
        assert not routing.has_route(1, 0)

    def test_self_route_rejected(self):
        with pytest.raises(RoutingError):
            StaticRouting().set_next_hop(0, 0, 1)

    def test_next_hop_cannot_be_self(self):
        with pytest.raises(RoutingError):
            StaticRouting().set_next_hop(0, 5, 0)

    def test_short_path_rejected(self):
        with pytest.raises(RoutingError):
            StaticRouting().install_path([0])

    def test_repeated_node_in_path_rejected(self):
        with pytest.raises(RoutingError):
            StaticRouting().install_path([0, 1, 0])

    def test_successors_of(self):
        routing = StaticRouting()
        routing.install_path([0, 1, 2])
        routing.install_path([0, 3, 4])
        assert set(routing.successors_of(0)) == {1, 3}

    def test_loop_detection(self):
        routing = StaticRouting()
        routing.set_next_hop("a", "z", "b")
        routing.set_next_hop("b", "z", "a")
        with pytest.raises(RoutingError):
            routing.path("a", "z", max_hops=10)

    def test_two_flows_share_segment(self):
        routing = StaticRouting()
        routing.install_path([10, 4, 3, 2])
        routing.install_path([11, 4, 3, 2])
        assert routing.next_hop(4, 2) == 3
        assert routing.next_hop(10, 2) == 4
        assert routing.next_hop(11, 2) == 4
