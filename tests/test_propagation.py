"""Tests for propagation models and range derivation."""

import math

import pytest

from repro.phy.propagation import RangeModel, TwoRayGround, distance


class TestDistance:
    def test_euclidean(self):
        assert distance((0, 0), (3, 4)) == 5.0

    def test_zero(self):
        assert distance((1, 1), (1, 1)) == 0.0


class TestTwoRayGround:
    def test_power_decays_with_distance(self):
        model = TwoRayGround()
        d = model.crossover_distance() + 10
        assert model.received_power(d) > model.received_power(2 * d)

    def test_far_field_is_fourth_power(self):
        model = TwoRayGround()
        d = model.crossover_distance() * 2
        ratio = model.received_power(d) / model.received_power(2 * d)
        assert ratio == pytest.approx(16.0)

    def test_near_field_is_square_law(self):
        model = TwoRayGround()
        d = model.crossover_distance() / 8
        ratio = model.received_power(d) / model.received_power(2 * d)
        assert ratio == pytest.approx(4.0)

    def test_zero_distance_returns_tx_power(self):
        model = TwoRayGround()
        assert model.received_power(0) == model.tx_power_w

    def test_range_for_threshold_roundtrip(self):
        model = TwoRayGround()
        d = model.crossover_distance() * 3
        threshold = model.received_power(d)
        assert model.range_for_threshold(threshold) == pytest.approx(d, rel=1e-6)

    def test_range_for_threshold_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            TwoRayGround().range_for_threshold(0.0)

    def test_crossover_formula(self):
        model = TwoRayGround()
        expected = 4 * math.pi * model.height_tx_m * model.height_rx_m / model.wavelength_m
        assert model.crossover_distance() == pytest.approx(expected)


class TestRangeModel:
    def test_defaults_are_papers(self):
        model = RangeModel()
        assert model.tx_range_m == 250.0
        assert model.sense_range_m == 550.0

    def test_receive_within_tx_range(self):
        model = RangeModel()
        assert model.can_receive(250.0)
        assert not model.can_receive(250.1)

    def test_sense_within_sense_range(self):
        model = RangeModel()
        assert model.can_sense(550.0)
        assert not model.can_sense(551.0)

    def test_sense_must_cover_tx(self):
        with pytest.raises(ValueError):
            RangeModel(tx_range_m=300, sense_range_m=200)

    def test_positive_ranges_required(self):
        with pytest.raises(ValueError):
            RangeModel(tx_range_m=0, sense_range_m=100)

    def test_from_two_ray(self):
        phys = TwoRayGround()
        rx_t = phys.received_power(250.0)
        cs_t = phys.received_power(550.0)
        model = RangeModel.from_two_ray(phys, rx_t, cs_t)
        assert model.tx_range_m == pytest.approx(250.0, rel=1e-6)
        assert model.sense_range_m == pytest.approx(550.0, rel=1e-6)
