"""Tests for the drop-tail FIFO queues."""

import pytest
from hypothesis import given, strategies as st

from repro.mac.queues import DEFAULT_CAPACITY, FifoQueue, QueueDropError
from repro.sim.engine import Engine
from repro.sim.tracing import TraceRecorder


class TestBasics:
    def test_default_capacity_is_50(self):
        assert DEFAULT_CAPACITY == 50
        assert FifoQueue().capacity == 50

    def test_fifo_order(self):
        queue = FifoQueue()
        for i in range(5):
            queue.push(i)
        assert [queue.pop() for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_peek_does_not_remove(self):
        queue = FifoQueue()
        queue.push("a")
        assert queue.peek() == "a"
        assert len(queue) == 1

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            FifoQueue().pop()

    def test_is_empty_and_full(self):
        queue = FifoQueue(capacity=2)
        assert queue.is_empty()
        queue.push(1)
        queue.push(2)
        assert queue.is_full()

    def test_capacity_positive(self):
        with pytest.raises(ValueError):
            FifoQueue(capacity=0)


class TestDropTail:
    def test_push_to_full_drops(self):
        queue = FifoQueue(capacity=1)
        assert queue.push(1)
        assert not queue.push(2)
        assert queue.pop() == 1
        assert queue.is_empty()

    def test_strict_push_raises(self):
        queue = FifoQueue(capacity=1)
        queue.push(1)
        with pytest.raises(QueueDropError):
            queue.push(2, strict=True)

    def test_drop_counter(self):
        queue = FifoQueue(capacity=1)
        queue.push(1)
        queue.push(2)
        queue.push(3)
        assert queue.dropped == 2

    def test_enqueue_dequeue_counters(self):
        queue = FifoQueue()
        queue.push(1)
        queue.push(2)
        queue.pop()
        assert queue.enqueued == 2
        assert queue.dequeued == 1


class TestTracing:
    def test_occupancy_traced_on_change(self):
        engine = Engine()
        trace = TraceRecorder()
        queue = FifoQueue("q", 10, trace, engine)
        queue.push(1)
        queue.push(2)
        queue.pop()
        series = trace.get("q.occupancy")
        assert series.values == [1, 2, 1]

    def test_drop_bumps_counter(self):
        engine = Engine()
        trace = TraceRecorder()
        queue = FifoQueue("q", 1, trace, engine)
        queue.push(1)
        queue.push(2)
        assert trace.counter("q.drops") == 1


class TestProperties:
    @given(st.lists(st.integers(), max_size=200))
    def test_property_occupancy_never_exceeds_capacity(self, items):
        queue = FifoQueue(capacity=10)
        for item in items:
            queue.push(item)
        assert len(queue) <= 10

    @given(st.lists(st.integers(), min_size=1, max_size=100))
    def test_property_accepted_items_preserve_order(self, items):
        queue = FifoQueue(capacity=1000)
        for item in items:
            queue.push(item)
        drained = [queue.pop() for _ in range(len(queue))]
        assert drained == items

    @given(st.lists(st.booleans(), max_size=300))
    def test_property_counters_consistent(self, operations):
        queue = FifoQueue(capacity=5)
        for is_push in operations:
            if is_push:
                queue.push(0)
            elif not queue.is_empty():
                queue.pop()
        assert queue.enqueued - queue.dequeued == len(queue)
        assert queue.enqueued + queue.dropped == sum(1 for op in operations if op)
