"""Tests for the rate-based EZ-flow variant (Section 7 extension)."""

import pytest

from repro.core.config import EZFlowConfig
from repro.core.ratecaa import (
    MAX_RATE_PPS,
    MIN_RATE_PPS,
    RateCaa,
    RateScheduler,
    attach_rate_ezflow,
)
from repro.mac.queues import FifoQueue
from repro.net.packet import Packet
from repro.sim.engine import Engine
from repro.sim.units import seconds
from repro.topology.linear import linear_chain

# Heavy end-to-end simulations: excluded from the CI fast lane.
pytestmark = pytest.mark.slow


def packet(seq=1):
    return Packet(flow_id="F", seq=seq, src=0, dst=9)


class TestRateScheduler:
    def make(self, rate=100.0, target=2):
        engine = Engine()
        mac_queue = FifoQueue(capacity=50)
        notified = []
        scheduler = RateScheduler(
            engine, mac_queue, lambda: notified.append(engine.now), rate, target
        )
        return engine, mac_queue, scheduler, notified

    def test_releases_at_rate(self):
        engine, mac_queue, scheduler, notified = self.make(rate=10.0, target=50)
        for seq in range(5):
            scheduler.offer(packet(seq))
        engine.run(until=seconds(1))
        # 10 pps -> 5 packets released within 0.5 s
        assert scheduler.released == 5
        assert len(mac_queue) == 5
        assert len(notified) == 5

    def test_respects_mac_backlog_target(self):
        engine, mac_queue, scheduler, notified = self.make(rate=1000.0, target=2)
        for seq in range(10):
            scheduler.offer(packet(seq))
        engine.run(until=seconds(1))
        # MAC queue never drains in this test, so only 2 enter it.
        assert len(mac_queue) == 2
        assert len(scheduler.upper) == 8

    def test_resumes_when_mac_drains(self):
        engine, mac_queue, scheduler, notified = self.make(rate=1000.0, target=2)
        for seq in range(4):
            scheduler.offer(packet(seq))
        engine.run(until=seconds(0.1))
        mac_queue.pop()
        mac_queue.pop()
        engine.run(until=seconds(0.2))
        assert scheduler.released == 4

    def test_upper_queue_capacity(self):
        engine, mac_queue, scheduler, notified = self.make()
        # No engine run: nothing is released, so exactly the upper
        # queue's capacity is accepted.
        accepted = [scheduler.offer(packet(seq)) for seq in range(150)]
        assert sum(accepted) == 100

    def test_rate_validated(self):
        engine, mac_queue, scheduler, notified = self.make()
        with pytest.raises(ValueError):
            scheduler.set_rate(0)

    def test_rate_change_takes_effect(self):
        engine, mac_queue, scheduler, notified = self.make(rate=1.0, target=50)
        for seq in range(20):
            scheduler.offer(packet(seq))
        scheduler.set_rate(100.0)
        # The already-armed first release still uses the old interval
        # (1 s); everything after drains at 100 pps.
        engine.run(until=seconds(1.5))
        assert scheduler.released == 20


class TestRateCaa:
    def make(self, window=1, initial=MAX_RATE_PPS):
        engine = Engine()
        scheduler = RateScheduler(engine, FifoQueue(), lambda: None)
        config = EZFlowConfig(sample_window=window)
        return RateCaa(config, scheduler, initial_rate_pps=initial), scheduler

    def test_overutilization_halves_rate(self):
        caa, scheduler = self.make()
        # Ladder position at max rate is 4 -> 4 consecutive windows.
        for _ in range(4):
            caa.on_sample(50)
        assert caa.rate_pps == MAX_RATE_PPS / 2
        assert scheduler.rate_pps == caa.rate_pps

    def test_underutilization_doubles_rate(self):
        caa, scheduler = self.make(initial=MAX_RATE_PPS / 4)
        # position = log2(256/64)+4 = 6 -> countdown threshold 15-6 = 9
        for _ in range(9):
            caa.on_sample(0)
        assert caa.rate_pps == MAX_RATE_PPS / 2

    def test_rate_bounded(self):
        caa, scheduler = self.make(initial=MIN_RATE_PPS)
        for _ in range(200):
            caa.on_sample(1000)
        assert caa.rate_pps == MIN_RATE_PPS
        caa2, _ = self.make(initial=MAX_RATE_PPS)
        for _ in range(200):
            caa2.on_sample(0)
        assert caa2.rate_pps == MAX_RATE_PPS

    def test_window_averaging(self):
        caa, scheduler = self.make(window=10)
        for i in range(9):
            assert caa.on_sample(100) is None
        assert caa.on_sample(100) == 100.0

    def test_mid_band_freezes(self):
        caa, scheduler = self.make()
        for _ in range(30):
            caa.on_sample(5.0)
        assert caa.rate_pps == MAX_RATE_PPS


class TestRateControllerEndToEnd:
    def test_stabilizes_4hop_chain(self):
        network = linear_chain(hops=4, seed=3, saturated=False, rate_bps=2_000_000)
        attach_rate_ezflow(network.nodes)
        network.run(until_us=seconds(300))
        for relay in (1, 2, 3):
            assert network.nodes[relay].total_buffer_occupancy() <= 20

    def test_throttles_the_source(self):
        network = linear_chain(hops=4, seed=3, saturated=False, rate_bps=2_000_000)
        controllers = attach_rate_ezflow(network.nodes)
        network.run(until_us=seconds(300))
        source_rate = controllers[0].current_rate(1)
        assert source_rate is not None and source_rate < MAX_RATE_PPS

    def test_improves_throughput_over_std(self):
        std = linear_chain(hops=4, seed=3, saturated=False, rate_bps=2_000_000)
        std.run(until_us=seconds(300))
        std_thr = std.flow("F1").throughput_bps(seconds(150), seconds(300))

        paced = linear_chain(hops=4, seed=3, saturated=False, rate_bps=2_000_000)
        attach_rate_ezflow(paced.nodes)
        paced.run(until_us=seconds(300))
        paced_thr = paced.flow("F1").throughput_bps(seconds(150), seconds(300))
        assert paced_thr > 1.5 * std_thr

    def test_current_rate_unknown_successor(self):
        network = linear_chain(hops=3, seed=1, saturated=False)
        controllers = attach_rate_ezflow(network.nodes)
        assert controllers[0].current_rate(99) is None
