"""Tests for the first-class results API (repro.results).

Covers the typed RunResult/ResultSet layer (including the export
round-trip guarantee), the Study builder, the cross-run compare tables,
the CLI surfaces built on them (``compare``, ``list --json``), and
the SweepRunner shutdown hardening.
"""

import filecmp
import json
import os
import subprocess
import sys
import textwrap

import pytest

import repro
from repro.experiments.common import ExperimentResult
from repro.experiments.runner import (
    SweepRunner,
    _grid_requests,
    execute_request,
    request_for,
)
from repro.experiments.specs import UnknownParameterError, catalogue, get_spec
from repro.results import (
    COMPARE_TABLE_SCHEMA,
    ComparisonError,
    DEFAULT_COMPARE_METRICS,
    MESHGEN_SUMMARY_COLUMNS,
    RUN_FAILURE_SCHEMA,
    RUN_RESULT_SCHEMA,
    ResultLoadError,
    ResultSet,
    RunFailure,
    RunResult,
    Study,
    compare,
    compare_json_dict,
    render_compare,
)

FAST_MESHGEN = {"nodes": 9, "flows": 2, "duration_s": 3.0, "warmup_s": 1.0}


def synthetic_run(run_id, **params):
    """A hand-built meshgen-shaped result (no simulation)."""
    defaults = {"topology": "mesh", "nodes": 9, "seed": 11, "algorithm": "none"}
    defaults.update(params)
    result = ExperimentResult("meshgen", "synthetic", parameters=defaults)
    summary = result.table("Summary", list(MESHGEN_SUMMARY_COLUMNS))
    base = 100.0 * (1.0 if defaults["algorithm"] == "none" else 1.5)
    summary.add(0.9, base, 0.8, 4)
    return RunResult(result, run_id=run_id, spec_id="meshgen", kwargs=defaults)


def synthetic_set(algorithms=("none", "ezflow"), seeds=(11,), **params):
    return ResultSet(
        synthetic_run(f"r~{algo}~{seed}", algorithm=algo, seed=seed, **params)
        for seed in seeds
        for algo in algorithms
    )


class TestRunResult:
    def test_from_record_carries_identity(self):
        record = execute_request(request_for("stability", {"slots": 1500, "trials": 15}))
        run = RunResult.from_record(record)
        assert run.run_id == record.request.run_id
        assert run.spec_id == "stability"
        assert run.kwargs == {"slots": 1500, "trials": 15}
        assert run.wall_s == record.wall_s
        assert run.param("slots") == 1500

    def test_scalars_flatten_single_row_tables(self):
        result = ExperimentResult("demo", "d")
        result.table("Shape", ["nodes", "edges"]).add(9, 20)
        multi = result.table("Rows", ["x", "y"])
        multi.add(1, 2)
        multi.add(3, 4)
        run = RunResult.from_result(result)
        assert run.scalars == {"nodes": 9, "edges": 20}
        assert run.scalar("edges") == 20
        assert run.scalar("missing", -1) == -1

    def test_scalar_name_collisions_get_table_prefix(self):
        result = ExperimentResult("demo", "d")
        result.table("First table", ["shared", "only_a"]).add(1, 2)
        result.table("Second", ["shared"]).add(3)
        scalars = RunResult.from_result(result).scalars
        assert scalars == {"first_table.shared": 1, "only_a": 2, "second.shared": 3}

    def test_numeric_scalars_exclude_strings_and_bools(self):
        result = ExperimentResult("demo", "d")
        result.table("T", ["kind", "ok", "value"]).add("mesh", True, 2.5)
        assert RunResult.from_result(result).numeric_scalars() == {"value": 2.5}

    def test_equality_in_memory_vs_loaded(self, tmp_path):
        record = execute_request(request_for("stability", {"slots": 1500, "trials": 15}))
        mem = RunResult.from_record(record)
        target = mem.save(str(tmp_path))
        loaded = RunResult.load(target)
        assert loaded == mem
        assert loaded.run_id == mem.run_id
        other = RunResult.load(target)
        other.result.notes.append("drift")
        assert other != mem


#: Every canned experiment plus a meshgen run, at parameters fast
#: enough for the test lane (the shapes still exercise each harness's
#: tables/series). fig4+table2 share the memoised testbed run.
ROUNDTRIP_RUNS = [
    ("fig1", {"duration_s": 12.0, "warmup_s": 3.0}, False),
    ("table1", {"duration_s": 12.0, "warmup_s": 2.0}, False),
    ("fig4", {"duration_s": 15.0, "warmup_s": 5.0}, True),
    ("table2", {"duration_s": 15.0, "warmup_s": 5.0}, True),
    ("scenario1", {"time_scale": 0.02}, True),
    ("scenario2", {"time_scale": 0.01}, True),
    ("stability", {"slots": 1500, "trials": 15}, False),
    ("loadsweep", {"duration_s": 20.0, "warmup_s": 5.0, "loads_kbps": (100.0,)}, True),
    ("bidirectional", {"duration_s": 5.0, "warmup_s": 1.0, "windows": (4,)}, False),
    ("meshgen", dict(FAST_MESHGEN), False),
]


class TestExportRoundTrip:
    @pytest.mark.parametrize(
        "spec_id,kwargs",
        [
            pytest.param(
                spec_id,
                kwargs,
                id=spec_id,
                marks=[pytest.mark.slow] if slow else [],
            )
            for spec_id, kwargs, slow in ROUNDTRIP_RUNS
        ],
    )
    def test_load_equals_memory_and_resave_is_byte_identical(
        self, tmp_path, spec_id, kwargs
    ):
        """RunResult.load(dir) == in-memory result, byte-for-byte re-export."""
        record = execute_request(request_for(spec_id, kwargs))
        mem = RunResult.from_record(record)

        first = mem.save(os.path.join(str(tmp_path), "a"))
        loaded = RunResult.load(first)
        assert loaded == mem, f"{spec_id}: loaded result differs from in-memory"
        # parameters, scalars, series and tables all survive the trip
        # (sequence-valued parameters come back as tuples)
        assert loaded.parameters == mem.parameters
        assert loaded.scalars == json.loads(json.dumps(mem.scalars, default=list))
        assert set(loaded.series) == set(mem.series)
        assert [t.title for t in loaded.tables] == [t.title for t in mem.tables]

        second = loaded.save(os.path.join(str(tmp_path), "b"))
        names = sorted(os.listdir(first))
        assert names == sorted(os.listdir(second))
        mismatched = [
            name
            for name in names
            if not filecmp.cmp(
                os.path.join(first, name), os.path.join(second, name), shallow=False
            )
        ]
        assert not mismatched, f"{spec_id}: byte drift after reload: {mismatched}"


class TestWireForms:
    """The schema-versioned JSON forms shared by export and HTTP."""

    def test_run_result_wire_form_matches_exported_bytes(self, tmp_path):
        record = execute_request(request_for("stability", {"slots": 1500, "trials": 15}))
        run = RunResult.from_record(record)
        doc = run.to_json_dict()
        assert doc["schema"] == RUN_RESULT_SCHEMA
        assert doc["run_id"] == run.run_id and doc["spec_id"] == "stability"
        target = run.save(str(tmp_path))
        with open(os.path.join(target, "result.json")) as handle:
            exported = json.load(handle)
        # One serialisation body: what the service responds with is the
        # parsed form of exactly what the export tree wrote.
        assert doc["result"] == exported

    def test_failure_wire_form(self):
        failure = RunFailure(
            run_id="r~seed=3",
            spec_id="stability",
            kind="exception",
            message="boom",
            attempts=2,
            wall_s=0.5,
        )
        doc = failure.to_json_dict()
        assert doc["schema"] == RUN_FAILURE_SCHEMA
        assert {k: v for k, v in doc.items() if k != "schema"} == failure.to_dict()

    def test_compare_wire_form(self):
        table = compare(synthetic_set())
        doc = compare_json_dict(table)
        assert doc["schema"] == COMPARE_TABLE_SCHEMA
        assert doc["markdown"] == render_compare(table)
        assert doc["columns"] == list(table.columns)
        assert doc["rows"] == [list(row) for row in table.rows]
        json.dumps(doc)  # JSON-safe throughout


class TestResultSet:
    def test_rejects_duplicate_run_ids(self):
        run = synthetic_run("same")
        with pytest.raises(ValueError):
            ResultSet([run, synthetic_run("same")])

    def test_sequence_protocol(self):
        rs = synthetic_set()
        assert len(rs) == 2
        assert rs[0].run_id == "r~none~11"
        assert rs["r~ezflow~11"].param("algorithm") == "ezflow"
        assert isinstance(rs[:1], ResultSet) and len(rs[:1]) == 1
        assert rs.get("missing") is None

    def test_filter_typed_and_cli_spellings(self):
        rs = synthetic_set(seeds=(11, 12))
        assert len(rs.filter(algorithm="ezflow")) == 2
        assert len(rs.filter(seed=11)) == 2
        assert len(rs.filter(seed="11")) == 2  # CLI string matches typed value
        assert len(rs.filter(lambda r: r.scalar("relay_backlog") == 4)) == 4
        assert len(rs.filter(algorithm="nope")) == 0

    def test_split_by_single_key_scalar_keys(self):
        groups = synthetic_set(("none", "ezflow", "diffq")).split_by("algorithm")
        assert sorted(groups) == ["diffq", "ezflow", "none"]
        assert all(len(g) == 1 for g in groups.values())

    def test_split_by_multiple_keys_tuple_keys(self):
        groups = synthetic_set(seeds=(11, 12)).split_by("algorithm", "seed")
        assert ("none", 11) in groups
        assert len(groups) == 4

    def test_align_on_defaults_to_layout_identity(self):
        rs = synthetic_set(seeds=(11, 12))
        groups = rs.align_on()
        assert [key for key, _ in groups] == [("mesh", 9, 11), ("mesh", 9, 12)]
        assert all(len(group) == 2 for _, group in groups)

    def test_varying_keys(self):
        rs = synthetic_set(seeds=(11, 12))
        assert rs.varying_keys(exclude=("algorithm",)) == ["seed"]

    def test_scalars_frame_covers_params_and_scalars(self):
        frame = synthetic_set().scalars_frame()
        assert frame.columns[0] == "run_id"
        for name in ("algorithm", "seed") + MESHGEN_SUMMARY_COLUMNS:
            assert name in frame.columns
        assert len(frame.rows) == 2
        aggregate = frame.column("aggregate_kbps")
        assert aggregate == [100.0, 150.0]

    def test_scalars_frame_explicit_columns(self):
        frame = synthetic_set().scalars_frame("algorithm", "aggregate_kbps")
        assert frame.columns == ["run_id", "algorithm", "aggregate_kbps"]

    def test_load_without_manifest_scans_run_dirs(self, tmp_path):
        for run in synthetic_set():
            run.save(str(tmp_path))
        rs = ResultSet.load(str(tmp_path))
        assert rs.run_ids == ("r~ezflow~11", "r~none~11")  # sorted scan order

    def test_load_empty_dir_raises(self, tmp_path):
        with pytest.raises(ResultLoadError, match="no manifest.json and no run"):
            ResultSet.load(str(tmp_path))

    def test_load_without_manifest_ignores_unrelated_files(self, tmp_path):
        for run in synthetic_set():
            run.save(str(tmp_path))
        (tmp_path / "notes.txt").write_text("scratch\n")
        (tmp_path / "empty_dir").mkdir()
        (tmp_path / "half_run").mkdir()
        (tmp_path / "half_run" / "summary.md").write_text("no result.json\n")
        rs = ResultSet.load(str(tmp_path))
        assert rs.run_ids == ("r~ezflow~11", "r~none~11")

    def test_load_without_manifest_mixed_experiments(self, tmp_path):
        for run in synthetic_set():
            run.save(str(tmp_path))
        other = ExperimentResult("stability", "synthetic", parameters={"trials": 3})
        other.table("Summary", ["aggregate_kbps"]).add(1.0)
        RunResult(other, run_id="z~stability", spec_id="stability").save(
            str(tmp_path)
        )
        rs = ResultSet.load(str(tmp_path))
        assert rs.run_ids == ("r~ezflow~11", "r~none~11", "z~stability")
        assert {run.spec_id for run in rs} == {"meshgen", "stability"}

    def test_manifestless_load_matches_manifest_load(self, tmp_path):
        """Scan order (sorted names) must equal manifest order for sorted ids."""
        rs = synthetic_set(seeds=(11, 12))
        rs.save(str(tmp_path))
        with_manifest = ResultSet.load(str(tmp_path))
        os.remove(tmp_path / "manifest.json")
        scanned = ResultSet.load(str(tmp_path))
        assert scanned.run_ids == tuple(sorted(with_manifest.run_ids))
        for run_id in scanned.run_ids:
            assert (
                scanned[run_id].result.to_dict()
                == with_manifest[run_id].result.to_dict()
            )


class TestResultSetSweepIntegration:
    def test_live_sweep_save_load_round_trip(self, tmp_path):
        requests = _grid_requests("stability", {"slots": [1200], "trials": [8, 9]})
        records = SweepRunner(jobs=1).run(requests)
        live = ResultSet.from_records(records)
        out = os.path.join(str(tmp_path), "out")
        live.save(out)

        loaded = ResultSet.load(out)
        assert loaded.run_ids == live.run_ids
        assert all(a == b for a, b in zip(loaded, live))
        # identity travels through the manifest
        assert loaded[0].spec_id == "stability"
        assert loaded[0].kwargs["slots"] == 1200

        # re-saving the loaded set reproduces the per-run bytes
        resaved = os.path.join(str(tmp_path), "resaved")
        loaded.save(resaved)
        for run_id in live.run_ids:
            for name in sorted(os.listdir(os.path.join(out, run_id))):
                assert filecmp.cmp(
                    os.path.join(out, run_id, name),
                    os.path.join(resaved, run_id, name),
                    shallow=False,
                ), (run_id, name)


class TestStudy:
    def test_requests_match_legacy_grid_requests(self):
        study = Study("stability").grid(trials=[5, 6]).set(slots=1500)
        legacy = _grid_requests("stability", {"trials": [5, 6], "slots": [1500]})
        assert study.requests() == legacy

    def test_default_axes_expand_like_the_sweep_cli(self):
        requests = Study("meshgen").grid(nodes=[9]).requests()
        topologies = [r.kwargs_dict["topology"] for r in requests]
        # expand_grid keeps each axis's declared value order
        assert topologies == ["mesh", "grid", "tree"]

    def test_pinning_suppresses_the_default_axis(self):
        requests = Study("meshgen").grid(nodes=[9], topology="mesh").requests()
        assert [r.kwargs_dict["topology"] for r in requests] == ["mesh"]
        assert Study("meshgen", topology="mesh").no_default_axes().requests()[0].kwargs_dict[
            "topology"
        ] == "mesh"

    def test_seeds_count_derives_distinct_seeds(self):
        requests = Study("stability").set(slots=100).seeds(3).requests()
        seeds = [r.kwargs_dict["seed"] for r in requests]
        assert len(set(seeds)) == 3
        spec = get_spec("stability")
        assert seeds == [spec.derive_seed(7, i) for i in range(3)]  # base = declared default seed

    def test_seeds_shared_across_grid_points_so_variants_align(self):
        """Regression: replicate k of every grid point must run the
        same seed, or compare() can never pair baseline and variants."""
        requests = Study("stability").grid(slots=[100, 200]).seeds(2).requests()
        by_point = {}
        for request in requests:
            kwargs = request.kwargs_dict
            by_point.setdefault(kwargs["slots"], set()).add(kwargs["seed"])
        assert by_point[100] == by_point[200]
        assert len(by_point[100]) == 2

    def test_seeds_sequence_is_an_axis(self):
        requests = Study("stability").set(slots=100).seeds([1, 2]).requests()
        assert [r.kwargs_dict["seed"] for r in requests] == [1, 2]

    def test_replicates_without_seed_source_rejected_at_request_time(self):
        study = Study("stability").set(slots=100).replicates(2)
        with pytest.raises(ValueError):
            study.requests()

    def test_unknown_axis_rejected_at_declaration(self):
        with pytest.raises(UnknownParameterError):
            Study("stability").grid(duration_s=[1.0])

    def test_sequence_kind_tuple_is_one_value(self):
        study = Study("stability").set(slots=100).grid(cw=(8, 8, 8, 8))
        [request] = study.requests()
        assert request.kwargs_dict["cw"] == (8, 8, 8, 8)
        axis = Study("stability").set(slots=100).grid(cw=[(8, 8, 8, 8), (16, 16, 16, 16)])
        assert len(axis.requests()) == 2

    def test_run_returns_result_set(self, tmp_path):
        out = os.path.join(str(tmp_path), "out")
        results = (
            Study("stability")
            .grid(trials=[5, 6])
            .set(slots=1500)
            .run(jobs=2, out=out)
        )
        assert isinstance(results, ResultSet)
        assert len(results) == 2
        assert os.path.isfile(os.path.join(out, "manifest.json"))
        assert ResultSet.load(out).run_ids == results.run_ids


class TestCompare:
    def test_delta_table_shape_and_math(self):
        table = compare(synthetic_set(("none", "ezflow", "diffq")))
        assert table.columns == [
            "metric",
            "algorithm=none",
            "diffq",
            "diffq Δ%",
            "ezflow",
            "ezflow Δ%",
        ]
        assert [row[0] for row in table.rows] == list(DEFAULT_COMPARE_METRICS)
        aggregate = next(r for r in table.rows if r[0] == "aggregate_kbps")
        assert aggregate[1] == 100.0  # baseline
        assert aggregate[2] == 150.0 and aggregate[3] == pytest.approx(50.0)

    def test_aligned_groups_emit_key_columns(self):
        table = compare(synthetic_set(seeds=(11, 12)))
        assert table.columns[:3] == ["seed", "metric", "algorithm=none"]
        assert len(table.rows) == 2 * len(DEFAULT_COMPARE_METRICS)

    def test_missing_baseline_raises(self):
        with pytest.raises(ComparisonError):
            compare(synthetic_set(("ezflow", "diffq")))

    def test_all_baseline_raises(self):
        with pytest.raises(ComparisonError):
            compare(synthetic_set(("none",)))

    def test_ambiguous_variant_in_group_raises(self):
        runs = [
            synthetic_run("a", algorithm="none"),
            synthetic_run("b", algorithm="ezflow", nodes=9),
            synthetic_run("c", algorithm="ezflow", nodes=9),
        ]
        with pytest.raises(ComparisonError, match="several"):
            compare(ResultSet(runs), align=())

    def test_ambiguous_baseline_in_group_raises(self):
        """Two baseline replicates in one group must not be silently
        collapsed onto whichever sorts first."""
        runs = [
            synthetic_run("a", algorithm="none", seed=11),
            synthetic_run("b", algorithm="none", seed=12),
            synthetic_run("c", algorithm="ezflow", seed=11),
        ]
        with pytest.raises(ComparisonError, match="baseline"):
            compare(ResultSet(runs), align=())

    @pytest.mark.slow
    def test_study_seeds_then_compare_produces_deltas(self):
        """Acceptance workflow: seeds(N) replicates align across the
        algorithm axis, so the delta table has no blank variant cells."""
        results = (
            Study("meshgen", topology="mesh")
            .grid(algorithm=["none", "ezflow"], nodes=9, flows=2,
                  duration_s=2.0, warmup_s=0.5)
            .seeds(2)
            .run(jobs=2)
        )
        table = compare(results)
        assert len(table.rows) == 2 * len(DEFAULT_COMPARE_METRICS)
        ezflow_cells = [row[table.columns.index("ezflow")] for row in table.rows]
        assert all(cell != "" for cell in ezflow_cells)

    def test_custom_metrics_and_zero_baseline_delta_blank(self):
        runs = synthetic_set()
        for run in runs:
            run.result.find_table("Summary").rows[0][1] = 0.0  # aggregate_kbps
        table = compare(runs, metrics=["aggregate_kbps"])
        assert table.rows[0][2] == 0.0 and table.rows[0][3] == ""

    def test_render_is_markdown(self):
        text = render_compare(compare(synthetic_set()))
        assert text.startswith("### Deltas vs algorithm=none")
        assert "| metric |" in text

    def test_live_equals_loaded_on_a_real_sweep(self, tmp_path):
        """Acceptance: the delta table is identical whether runs came
        from a live sweep or from loading its export directory."""
        out = os.path.join(str(tmp_path), "out")
        live = (
            Study("meshgen", topology="mesh")
            .grid(algorithm=["none", "ezflow"], **FAST_MESHGEN)
            .run(jobs=2, out=out)
        )
        live_table = render_compare(compare(live))
        loaded_table = render_compare(compare(ResultSet.load(out)))
        assert live_table == loaded_table
        assert "ezflow Δ%" in live_table


class TestCompareCli:
    def run_main(self, argv):
        from repro.experiments.__main__ import main

        return main(argv)

    def test_live_then_loaded_byte_identical(self, tmp_path, capsys):
        out = os.path.join(str(tmp_path), "out")
        argv = ["compare", "meshgen", "--set", "topology=mesh"]
        for key, value in FAST_MESHGEN.items():
            argv += ["--set", f"{key}={value}"]
        argv += ["--set", "algorithm=none,ezflow", "--jobs", "2", "--out", out]
        assert self.run_main(argv) == 0
        live = capsys.readouterr().out
        assert "### Deltas vs algorithm=none" in live

        assert self.run_main(["compare", os.path.join(out, ".")]) == 0
        loaded = capsys.readouterr().out
        assert loaded == live
        with open(os.path.join(out, "compare.md")) as handle:
            assert handle.read() == live.rstrip("\n") + "\n"

    def test_bad_baseline_spelling_exit_2(self, capsys):
        assert self.run_main(["compare", "meshgen", "--baseline", "junk"]) == 2
        assert "KEY=VALUE" in capsys.readouterr().err

    def test_grid_with_directory_target_exit_2(self, tmp_path, capsys):
        for run in synthetic_set():
            run.save(str(tmp_path))
        code = self.run_main(
            ["compare", str(tmp_path), "--set", "algorithm=none,ezflow"]
        )
        assert code == 2
        assert "live sweeps" in capsys.readouterr().err

    def test_replicates_build_an_aligned_seed_axis(self):
        """compare's --replicates must give every variant the same seed
        set (per-run-index seeds would leave all delta cells blank)."""
        import argparse

        from repro.experiments.__main__ import _build_study

        args = argparse.Namespace(
            grid_axes=["algorithm=none,ezflow", "topology=mesh"],
            replicates=2,
            base_seed=9,
        )
        study = _build_study(get_spec("meshgen"), args, aligned_seeds=True)
        seeds_by_algorithm = {}
        for request in study.requests():
            kwargs = request.kwargs_dict
            seeds_by_algorithm.setdefault(kwargs["algorithm"], set()).add(
                kwargs["seed"]
            )
        assert seeds_by_algorithm["none"] == seeds_by_algorithm["ezflow"]
        assert len(seeds_by_algorithm["none"]) == 2

    def test_replicates_rejected_on_directory_target(self, tmp_path, capsys):
        for run in synthetic_set():
            run.save(str(tmp_path))
        assert self.run_main(["compare", str(tmp_path), "--replicates", "2"]) == 2
        assert "live sweeps" in capsys.readouterr().err

    def test_no_matching_baseline_exit_2(self, tmp_path, capsys):
        for run in synthetic_set(("ezflow", "diffq")):
            run.save(str(tmp_path))
        assert self.run_main(["compare", str(tmp_path)]) == 2
        assert "baseline" in capsys.readouterr().err


class TestListJson:
    def test_catalogue_is_json_safe_and_complete(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["list", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data == json.loads(json.dumps(catalogue()))
        by_id = {spec["id"]: spec for spec in data["experiments"]}
        assert "meshgen" in by_id
        meshgen = by_id["meshgen"]
        assert {p["name"] for p in meshgen["params"]} >= {"topology", "nodes", "seed"}
        defaults = {p["name"]: p["default"] for p in meshgen["params"]}
        assert defaults["nodes"] == 16
        assert meshgen["sweep_defaults"] == [
            {"name": "topology", "values": ["mesh", "grid", "tree"]}
        ]
        # sequence-kind defaults are JSON lists, not tuples
        stability = by_id["stability"]
        cw = next(p for p in stability["params"] if p["name"] == "cw")
        assert cw["default"] == [16, 16, 16, 16]
        # schema v2: every scenario advertises its engine tiers, and
        # meshgen exposes the fidelity axis as a declared parameter
        assert data["schema"] == "repro.experiments/catalogue/2"
        assert meshgen["fidelities"] == ["event", "slotted"]
        assert defaults["fidelity"] == "event"
        assert stability["fidelities"] == ["event"]

    def test_plain_list_output_unchanged(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "meshgen" in out and "[sweep default axis] topology=mesh,grid,tree" in out



class TestSweepRunnerShutdown:
    def test_close_survives_torn_down_executor(self):
        class TornDownExecutor:
            # Interpreter-shutdown symptoms: executor internals' module
            # globals already collected.
            _processes = None

            def shutdown(self, wait=True, cancel_futures=False):
                raise AttributeError("'NoneType' object has no attribute 'util'")

        runner = SweepRunner(jobs=2)
        runner._executor = TornDownExecutor()
        runner.close()  # must not raise
        assert runner._executor is None
        runner.close()  # idempotent

    def test_close_survives_missing_attribute(self):
        runner = SweepRunner.__new__(SweepRunner)  # __init__ never ran
        runner.close()
        assert runner._executor is None

    def test_del_swallows_everything(self):
        runner = SweepRunner(jobs=2)
        runner.close = lambda: (_ for _ in ()).throw(SystemExit(3))
        runner.__del__()  # BaseException swallowed

    def test_interpreter_shutdown_is_silent(self):
        """An unclosed parallel runner must not spew 'Exception ignored
        in: ... __del__' noise when the interpreter exits."""
        script = textwrap.dedent(
            """
            from repro.experiments.runner import SweepRunner, request_for

            runner = SweepRunner(jobs=2)
            runner.run(
                [
                    request_for("stability", {"slots": 300, "trials": 3}),
                    request_for("stability", {"slots": 301, "trials": 3}),
                ]
            )
            # deliberately no close(): __del__ runs at interpreter shutdown
            """
        )
        import_root = os.path.dirname(
            os.path.dirname(os.path.abspath(repro.__file__))
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env={
                "PATH": os.environ.get("PATH", "/usr/bin:/bin"),
                "PYTHONPATH": import_root,
            },
            timeout=120,
        )
        assert result.returncode == 0, result.stderr
        assert "Exception ignored" not in result.stderr, result.stderr
