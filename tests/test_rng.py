"""Tests for named deterministic RNG streams."""

from repro.sim.rng import RngRegistry


def test_same_name_same_stream_object():
    registry = RngRegistry(1)
    assert registry.stream("a") is registry.stream("a")


def test_same_seed_and_name_reproduce_sequence():
    first = [RngRegistry(7).stream("mac.0").random() for _ in range(5)]
    second = [RngRegistry(7).stream("mac.0").random() for _ in range(5)]
    assert first == second


def test_different_names_are_independent():
    registry = RngRegistry(7)
    a = [registry.stream("a").random() for _ in range(5)]
    b = [registry.stream("b").random() for _ in range(5)]
    assert a != b


def test_different_seeds_differ():
    a = RngRegistry(1).stream("x").random()
    b = RngRegistry(2).stream("x").random()
    assert a != b


def test_fork_is_deterministic():
    a = RngRegistry(3).fork(5).stream("x").random()
    b = RngRegistry(3).fork(5).stream("x").random()
    assert a == b


def test_fork_differs_from_parent():
    parent = RngRegistry(3)
    child = parent.fork(1)
    assert parent.stream("x").random() != child.stream("x").random()
