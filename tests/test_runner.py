"""Tests for the parallel sweep runner, specs, and deterministic export."""

import inspect
import json
import os
import filecmp

import pytest

from repro.experiments import experiment_ids, get_experiment
from repro.experiments.export import export_records
from repro.experiments.runner import (
    RunRequest,
    SweepRunner,
    catalogue_requests,
    execute_request,
    expand_grid,
    _grid_requests,
    make_run_id,
    request_for,
)
from repro.experiments.specs import (
    SPECS,
    ParameterValueError,
    UnknownParameterError,
    get_spec,
    spec_ids,
)

# A scenario cheap enough to run many times in tests.
FAST = {"slots": 1500, "trials": 15}


def fast_request(**extra):
    kwargs = dict(FAST)
    kwargs.update(extra)
    return request_for("stability", kwargs)


class TestSpecs:
    def test_every_experiment_id_resolves(self):
        for spec_id in spec_ids():
            assert get_spec(spec_id).resolve() is get_experiment(spec_id)

    def test_declared_params_match_entry_signatures(self):
        """The schema must not drift from the real run() signatures."""
        for spec in SPECS:
            signature = inspect.signature(spec.resolve())
            declared = {p.name for p in spec.params}
            actual = set(signature.parameters)
            assert declared == actual, f"{spec.id}: {declared} != {actual}"
            for param in spec.params:
                default = signature.parameters[param.name].default
                if isinstance(default, (int, float, tuple)):
                    assert param.default == default, (
                        f"{spec.id}.{param.name}: declared {param.default!r}, "
                        f"signature has {default!r}"
                    )

    def test_unknown_parameter_rejected(self):
        with pytest.raises(UnknownParameterError):
            get_spec("stability").validate({"duration_s": 5.0})

    def test_internal_errors_not_masked(self):
        """Errors raised inside an experiment propagate as themselves.

        The old CLI wrapped runner calls in ``except TypeError`` and
        reported *any* TypeError as "unknown option"; with schema
        validation up front, a failure inside the harness surfaces.
        """
        spec = get_spec("stability")
        with pytest.raises(Exception) as excinfo:
            # cw has fewer entries than hops -> fails inside the harness.
            spec.run(slots=100, trials=2, cw=(16,), hops=4)
        assert not isinstance(excinfo.value, UnknownParameterError)

    def test_string_coercion(self):
        spec = get_spec("stability")
        validated = spec.validate({"slots": "2000", "cw": "8,8,8,8"})
        assert validated["slots"] == 2000
        assert validated["cw"] == (8, 8, 8, 8)

    def test_bad_value_reported(self):
        with pytest.raises(ParameterValueError):
            get_spec("stability").validate({"slots": "many"})

    def test_alias_ids_present(self):
        ids = experiment_ids()
        for required in ("fig6", "fig10", "table3", "table4"):
            assert required in ids

    def test_derived_seeds_deterministic_and_distinct(self):
        spec = get_spec("stability")
        seeds = [spec.derive_seed(9, i) for i in range(20)]
        assert seeds == [spec.derive_seed(9, i) for i in range(20)]
        assert len(set(seeds)) == 20


class TestGrid:
    def test_expand_grid_deterministic_order(self):
        grid = {"b": [1, 2], "a": ["x"]}
        points = expand_grid(grid)
        assert points == [{"a": "x", "b": 1}, {"a": "x", "b": 2}]

    def test_empty_grid_single_point(self):
        assert expand_grid({}) == [{}]

    def test_grid_requests_unique_run_ids(self):
        requests = _grid_requests("stability", {"slots": [100, 200], "trials": [5, 6]})
        assert len(requests) == 4
        assert len({r.run_id for r in requests}) == 4

    def test_replicates_need_seed_source(self):
        with pytest.raises(ValueError):
            _grid_requests("stability", {"slots": [100]}, replicates=2)

    def test_replicates_with_base_seed_derive_distinct_seeds(self):
        requests = _grid_requests(
            "stability", {"slots": [100]}, base_seed=3, replicates=3
        )
        seeds = [r.kwargs_dict["seed"] for r in requests]
        assert len(set(seeds)) == 3

    def test_seed_axis_wins_over_derivation(self):
        requests = _grid_requests("stability", {"seed": [1, 2]}, base_seed=99)
        assert [r.kwargs_dict["seed"] for r in requests] == [1, 2]

    def test_seed_axis_with_replicates_gets_unique_run_ids(self):
        """Regression: identical kwargs per replicate must still yield
        distinct run ids (SweepRunner rejects duplicates)."""
        requests = _grid_requests("stability", {"seed": [1, 2]}, replicates=2)
        assert len(requests) == 4
        assert len({r.run_id for r in requests}) == 4
        SweepRunner(jobs=1)  # and the batch is accepted
        # (no execution needed; uniqueness is what the runner checks)


class TestCatalogue:
    def test_aliases_collapse(self):
        requests, _ = catalogue_requests(["fig6", "fig7", "scenario1"])
        assert len(requests) == 1
        assert requests[0].spec_id == "scenario1"

    def test_strict_rejects_unknown_override(self):
        with pytest.raises(UnknownParameterError):
            catalogue_requests(["stability"], {"duration_s": 5.0}, strict=True)

    def test_lenient_skips_and_warns(self):
        requests, warnings = catalogue_requests(
            ["stability", "fig1"], {"duration_s": 5.0}, strict=False
        )
        assert len(requests) == 2
        by_id = {r.spec_id: r.kwargs_dict for r in requests}
        assert "duration_s" not in by_id["stability"]
        assert by_id["fig1"]["duration_s"] == 5.0
        assert any("stability" in w for w in warnings)


class TestSweepRunner:
    def test_rejects_duplicate_run_ids(self):
        request = fast_request()
        with pytest.raises(ValueError):
            SweepRunner().run([request, request])

    def test_serial_results_in_request_order(self):
        requests = _grid_requests("stability", {"trials": [5, 6, 7], "slots": [1000]})
        records = SweepRunner(jobs=1).run(requests)
        assert [r.request.run_id for r in records] == [r.run_id for r in requests]

    def test_on_record_fires_in_order(self):
        requests = _grid_requests("stability", {"trials": [5, 6], "slots": [1000]})
        seen = []
        SweepRunner(jobs=1).run(requests, on_record=lambda r: seen.append(r.request.run_id))
        assert seen == [r.run_id for r in requests]

    def test_parallel_and_serial_exports_byte_identical(self, tmp_path):
        """The determinism guarantee, extended across worker processes."""
        requests = _grid_requests(
            "stability", {"slots": [1200], "trials": [8, 9]}, base_seed=5
        )
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        os.makedirs(serial_dir)
        os.makedirs(parallel_dir)
        export_records(SweepRunner(jobs=1).run(requests), str(serial_dir))
        export_records(SweepRunner(jobs=2).run(requests), str(parallel_dir))

        comparison = filecmp.dircmp(str(serial_dir), str(parallel_dir))

        def assert_identical(cmp):
            assert not cmp.left_only and not cmp.right_only, (
                cmp.left_only,
                cmp.right_only,
            )
            # shallow=False byte comparison for the common files; the
            # manifest is the one deliberate exception — its `timing`
            # section records wall clocks — and is compared structurally
            # with timing removed.
            for name in cmp.common_files:
                left = os.path.join(cmp.left, name)
                right = os.path.join(cmp.right, name)
                if name == "manifest.json":
                    with open(left) as handle:
                        left_manifest = json.load(handle)
                    with open(right) as handle:
                        right_manifest = json.load(handle)
                    assert left_manifest.pop("timing")["runs"].keys()
                    assert right_manifest.pop("timing")["runs"].keys()
                    assert left_manifest == right_manifest
                else:
                    assert filecmp.cmp(left, right, shallow=False), name
            assert not [f for f in cmp.diff_files if f != "manifest.json"]
            for sub in cmp.subdirs.values():
                assert_identical(sub)

        assert_identical(comparison)

    def test_deterministic_artifacts_contain_no_wall_times(self, tmp_path):
        """Wall clocks live only in the manifest's timing section."""
        records = SweepRunner().run([fast_request()])
        export_records(records, str(tmp_path))
        for root, _, files in os.walk(tmp_path):
            for name in files:
                if name == "manifest.json":
                    continue
                with open(os.path.join(root, name)) as handle:
                    text = handle.read()
                assert "wall" not in text.lower(), name

    def test_manifest_timing_section(self, tmp_path):
        request = fast_request()
        records = SweepRunner().run([request])
        export_records(records, str(tmp_path))
        with open(os.path.join(str(tmp_path), "manifest.json")) as handle:
            manifest = json.load(handle)
        timing = manifest["timing"]
        entry = timing["runs"][request.run_id]
        assert entry["wall_s"] > 0
        assert timing["total_wall_s"] >= entry["wall_s"]


class TestExecuteAndExport:
    def test_execute_request_round_trip(self):
        record = execute_request(fast_request())
        assert record.result.experiment == "stability"
        assert record.wall_s > 0

    def test_result_json_round_trip(self, tmp_path):
        from repro.experiments.common import ExperimentResult

        record = execute_request(fast_request())
        export_records([record], str(tmp_path))
        path = os.path.join(str(tmp_path), record.request.run_id, "result.json")
        with open(path) as handle:
            data = json.load(handle)
        restored = ExperimentResult.from_dict(data)
        # Compare canonical JSON: tuples legitimately become lists.
        assert json.dumps(restored.to_dict(), sort_keys=True, default=list) == json.dumps(
            record.result.to_dict(), sort_keys=True, default=list
        )

    def test_manifest_and_experiments_md_written(self, tmp_path):
        records = SweepRunner().run([fast_request()])
        export_records(records, str(tmp_path))
        with open(os.path.join(str(tmp_path), "manifest.json")) as handle:
            manifest = json.load(handle)
        assert manifest["runs"][0]["experiment"] == "stability"
        with open(os.path.join(str(tmp_path), "EXPERIMENTS.md")) as handle:
            text = handle.read()
        assert "# Experiment results" in text
        assert "Table 4" in text

    def test_run_id_slug_is_filesystem_safe(self):
        run_id = make_run_id("loadsweep", {"loads_kbps": (50.0, 100.0), "seed": 1})
        assert "/" not in run_id and " " not in run_id


class TestCliIntegration:
    def test_run_all_list_and_sweep_smoke(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "stability" in out and "loads_kbps" in out

        code = main(
            [
                "sweep",
                "stability",
                "--grid",
                "trials=5,6",
                "--grid",
                "slots=1500",
                "--jobs",
                "1",
                "--out",
                str(tmp_path),
            ]
        )
        assert code == 0
        assert os.path.isfile(os.path.join(str(tmp_path), "EXPERIMENTS.md"))

    def test_legacy_spelling_still_works(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["stability", "--set", "slots=1500", "--set", "trials=10"]) == 0
        assert "Table 4" in capsys.readouterr().out

    def test_unknown_grid_axis_exit_2(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["sweep", "stability", "--grid", "duration_s=1,2"]) == 2
        assert "unknown parameter" in capsys.readouterr().err

    def test_sequence_axis_commas_are_one_value(self, capsys):
        """Regression: --grid cw=8,8,8,8 is ONE 4-element grid value."""
        from repro.experiments.__main__ import main

        code = main(
            [
                "sweep",
                "stability",
                "--grid",
                "cw=8,8,8,8",
                "--grid",
                "slots=1000",
                "--grid",
                "trials=5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cw=(8, 8, 8, 8)" in out

    def test_keyerror_inside_experiment_propagates(self, monkeypatch):
        """Regression: only registry misses map to exit 2; KeyErrors
        raised inside a harness must propagate."""
        from repro.experiments import __main__ as cli
        from repro.experiments import specs

        def boom(self, **kwargs):
            raise KeyError("bug inside the experiment")

        monkeypatch.setattr(specs.ScenarioSpec, "run", boom)
        with pytest.raises(KeyError):
            cli.main(["run", "stability"])
