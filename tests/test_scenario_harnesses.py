"""Smoke tests for the scenario experiment harnesses at tiny scales.

The benchmarks exercise the shapes at realistic horizons; these tests
only verify the harness plumbing — tables populated, series recorded,
aliases wired — so a refactor cannot silently break an experiment.
"""

import pytest

from repro.experiments import fig4, loadsweep, scenario1, scenario2, table2

# Heavy end-to-end simulations: excluded from the CI fast lane.
pytestmark = pytest.mark.slow


class TestScenario1Harness:
    @pytest.fixture(scope="class")
    def result(self):
        return scenario1.run(time_scale=0.02, seed=5)

    def test_period_table_covers_both_macs(self, result):
        table = result.find_table("Scenario 1")
        labels = {(row[0], row[1]) for row in table.rows}
        assert ("P1 (F1 alone)", "off") in labels
        assert ("P1 (F1 alone)", "on") in labels

    def test_f2_only_reported_in_p2(self, result):
        table = result.find_table("Scenario 1")
        f2_periods = {row[0] for row in table.rows if row[2] == "F2"}
        assert f2_periods == {"P2 (F1+F2)"}

    def test_fig6_series_for_both_flows(self, result):
        for tag in ("std", "ez"):
            for flow in ("F1", "F2"):
                assert f"fig6.{tag}.{flow}.throughput_kbps" in result.series

    def test_fig8_cw_table_only_ez(self, result):
        cw_table = result.find_table("Figure 8")
        assert all(row[0] == "on" for row in cw_table.rows)
        assert len(cw_table.rows) >= 8

    def test_parameters_recorded(self, result):
        assert result.parameters["time_scale"] == 0.02


class TestScenario2Harness:
    @pytest.fixture(scope="class")
    def result(self):
        return scenario2.run(time_scale=0.01, seed=6)

    def test_table3_has_twelve_rows(self, result):
        table = result.find_table("Table 3")
        assert len(table.rows) == 12  # (2+3+1) flows x 2 MACs

    def test_paper_reference_column_populated(self, result):
        table = result.find_table("Table 3")
        papers = [row[3] for row in table.rows]
        assert 145.6 in papers and 27.3 in papers

    def test_fairness_reported_for_multiflow_periods(self, result):
        table = result.find_table("Table 3")
        for period, ez, flow, paper, thr, sd, fi, pd in table.rows:
            if period in ("P1", "P2"):
                assert fi != "-"
            else:
                assert fi == "-"

    def test_fig10_series_exist(self, result):
        for tag in ("std", "ez"):
            for flow in ("F1", "F2", "F3"):
                assert f"fig10.{tag}.{flow}.delay_s" in result.series

    def test_fig11_covers_flow_heads(self, result):
        cw_table = result.find_table("Figure 11")
        nodes = {row[1] for row in cw_table.rows}
        assert {0, 10, 19} <= nodes


class TestOtherHarnessPlumbing:
    def test_fig4_series_naming(self):
        result = fig4.run(duration_s=15.0, warmup_s=5.0, seed=4)
        assert "F1.std.N1.buffer" in result.series
        assert "F2.ez.N4.buffer" in result.series

    def test_table2_runs_all_scenarios(self):
        result = table2.run(duration_s=15.0, warmup_s=5.0, seed=4)
        table = result.find_table("Table 2")
        scenarios = {row[0] for row in table.rows}
        assert scenarios == {"F1 alone", "F2 alone", "parking lot"}

    def test_loadsweep_series(self):
        result = loadsweep.run(duration_s=20.0, warmup_s=5.0, loads_kbps=(100.0,))
        assert len(result.series["goodput.std"]) == 1
        assert len(result.series["goodput.ez"]) == 1


class TestCli:
    def test_cli_lists_and_runs(self, capsys):
        from repro.experiments.__main__ import main

        code = main(["stability"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 4" in out

    def test_cli_unknown_experiment(self, capsys):
        from repro.experiments.__main__ import main

        code = main(["fig99"])
        assert code == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_cli_rejects_bad_kwargs(self, capsys):
        from repro.experiments.__main__ import main

        # --duration is not a scenario1 parameter -> exit code 2
        code = main(["scenario1", "--duration", "5"])
        assert code == 2
