"""Tests for the long-running sweep service (repro.service).

Covers the submission document parser (Study-builder shapes, typed
validation errors), the WSGI app battery (routing, status codes,
cancel), end-to-end execution through the queue against a shared sqlite
store — including the two acceptance properties: an identical
resubmission executes zero runs, and two *concurrent* overlapping
submissions dedupe to one execution per content key — chaos-plan jobs
that fail without wedging the queue, and the byte-identity contract:
the HTTP ``compare.md`` body equals the CLI ``compare`` stdout on the
same store, byte for byte.
"""

import io
import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.request

import pytest

from repro.experiments.specs import (
    ParameterValueError,
    UnknownExperimentError,
    UnknownParameterError,
    catalogue,
)
from repro.results import RUN_FAILURE_SCHEMA, RUN_RESULT_SCHEMA, Study
from repro.service import JOB_SCHEMA, STATUS_SCHEMA, JobError, ServiceApp, SweepService, build_study
from repro.service.http import serve

# A scenario cheap enough to run many times in tests (test_store.py's).
FAST = {"slots": 1500, "trials": 15}

# A meshgen point small enough for the compare byte-identity test.
FAST_MESHGEN = {
    "topology": "mesh",
    "nodes": 9,
    "flows": 2,
    "duration_s": 3.0,
    "warmup_s": 1.0,
    "fidelity": "slotted",
}


def stability_doc(seeds=(3, 4), **extra):
    fixed = dict(FAST)
    fixed.update(extra)
    return {
        "experiment": "stability",
        "set": fixed,
        "grid": {"seed": list(seeds)},
    }


def wsgi_call(app, method, path, body=None, query=""):
    """Drive the WSGI app directly; returns (status code, parsed body)."""
    raw = b"" if body is None else json.dumps(body).encode()
    environ = {
        "REQUEST_METHOD": method,
        "PATH_INFO": path,
        "QUERY_STRING": query,
        "CONTENT_LENGTH": str(len(raw)),
        "wsgi.input": io.BytesIO(raw),
    }
    captured = {}

    def start_response(status, headers):
        captured["status"] = int(status.split()[0])
        captured["headers"] = dict(headers)

    payload = b"".join(app(environ, start_response))
    text = payload.decode()
    if captured["headers"]["Content-Type"].startswith("application/json"):
        return captured["status"], json.loads(text)
    return captured["status"], text


def poll_done(app, job_id, timeout=120.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        status, doc = wsgi_call(app, "GET", f"/jobs/{job_id}")
        assert status == 200
        if doc["state"] in ("done", "failed", "cancelled"):
            return doc
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} did not finish within {timeout}s")


class TestBuildStudy:
    def test_mirrors_the_builder(self):
        doc = {
            "experiment": "stability",
            "grid": {"seed": [3, 4], "trials": 15},
            "set": {"slots": 1500},
        }
        built = build_study(doc).requests()
        fluent = (
            Study("stability").grid(seed=[3, 4], trials=15).set(slots=1500).requests()
        )
        assert [r.run_id for r in built] == [r.run_id for r in fluent]

    def test_default_axes_and_opt_out(self):
        doc = {"experiment": "meshgen", "set": FAST_MESHGEN}
        expanded = build_study(doc).requests()
        assert len(expanded) == 1  # topology pinned -> no default axis left
        doc = {
            "experiment": "meshgen",
            "set": {k: v for k, v in FAST_MESHGEN.items() if k != "topology"},
        }
        assert len(build_study(doc).requests()) == 3  # mesh, grid, tree
        doc["no_default_axes"] = True
        assert len(build_study(doc).requests()) == 1

    def test_seeds_count_matches_study_builder(self):
        doc = {"experiment": "stability", "set": FAST, "seeds": 3, "base_seed": 7}
        built = build_study(doc).requests()
        fluent = Study("stability").set(**FAST).seeds(3, base=7).requests()
        assert [r.run_id for r in built] == [r.run_id for r in fluent]

    def test_replicates(self):
        doc = {"experiment": "stability", "set": FAST, "replicates": 2, "base_seed": 5}
        assert len(build_study(doc).requests()) == 2

    @pytest.mark.parametrize(
        "doc",
        [
            [],
            {"experiment": 7},
            {"experiment": "stability", "grid": []},
            {"experiment": "stability", "set": "slots=1"},
            {"experiment": "stability", "seeds": 2, "replicates": 2},
            {"experiment": "stability", "seeds": True},
            {"experiment": "stability", "replicates": "two"},
            {"experiment": "stability", "base_seed": "seven"},
        ],
    )
    def test_invalid_documents(self, doc):
        with pytest.raises(JobError):
            build_study(doc)

    def test_typed_catalogue_errors_propagate(self):
        with pytest.raises(UnknownExperimentError):
            build_study({"experiment": "nope"})
        with pytest.raises(UnknownParameterError):
            build_study({"experiment": "stability", "grid": {"bogus": [1]}})
        with pytest.raises(ParameterValueError):
            build_study(
                {"experiment": "stability", "grid": {"slots": ["many"]}}
            ).requests()


class TestAppRouting:
    """App-level battery over an idle service (scheduler never started)."""

    @pytest.fixture()
    def app(self, tmp_path):
        service = SweepService(f"sqlite:{tmp_path / 'runs.sqlite'}")
        yield ServiceApp(service)
        service.shutdown()

    def test_index_and_catalogue(self, app):
        status, doc = wsgi_call(app, "GET", "/")
        assert status == 200 and "endpoints" in doc
        status, doc = wsgi_call(app, "GET", "/scenarios")
        assert status == 200
        assert doc == json.loads(json.dumps(catalogue()))  # same document

    def test_status_document(self, app):
        status, doc = wsgi_call(app, "GET", "/status")
        assert status == 200
        assert doc["schema"] == STATUS_SCHEMA
        assert doc["queue_depth"] == 0 and doc["accepting"] is True
        # Uptime plus zero-filled per-state job counts (every state
        # always present, so dashboards need no key-existence checks).
        assert doc["uptime_s"] >= 0.0
        assert doc["jobs"] == {
            "queued": 0,
            "running": 0,
            "done": 0,
            "failed": 0,
            "cancelled": 0,
        }

    def test_unknown_routes_and_methods(self, app):
        assert wsgi_call(app, "GET", "/nope")[0] == 404
        assert wsgi_call(app, "GET", "/jobs/job-9999")[0] == 404
        assert wsgi_call(app, "POST", "/scenarios")[0] == 405
        assert wsgi_call(app, "DELETE", "/studies")[0] == 405

    def test_submission_errors_are_400(self, app):
        environ_bad = {
            "REQUEST_METHOD": "POST",
            "PATH_INFO": "/studies",
            "CONTENT_LENGTH": "9",
            "wsgi.input": io.BytesIO(b"not json!"),
        }
        captured = {}
        app(environ_bad, lambda s, h: captured.update(status=s))
        assert captured["status"].startswith("400")
        assert wsgi_call(app, "POST", "/studies", {"experiment": "nope"})[0] == 400
        status, doc = wsgi_call(
            app,
            "POST",
            "/studies",
            {"experiment": "stability", "grid": {"bogus": [1]}},
        )
        assert status == 400 and "bogus" in doc["error"]
        bad_value = {"experiment": "stability", "grid": {"slots": ["many"]}}
        assert wsgi_call(app, "POST", "/studies", bad_value)[0] == 400

    def test_submit_queue_cancel(self, app):
        status, doc = wsgi_call(app, "POST", "/studies", stability_doc())
        assert status == 202
        assert doc["schema"] == JOB_SCHEMA
        assert doc["state"] == "queued" and doc["total_runs"] == 2
        assert all(run["state"] == "pending" for run in doc["runs"])
        job_id = doc["id"]
        status, listing = wsgi_call(app, "GET", "/jobs")
        assert status == 200 and [j["id"] for j in listing["jobs"]] == [job_id]
        assert "runs" not in listing["jobs"][0]  # summaries only
        # Results of an unfinished job are a conflict, not a 404.
        assert wsgi_call(app, "GET", f"/jobs/{job_id}/results")[0] == 409
        status, doc = wsgi_call(app, "DELETE", f"/jobs/{job_id}")
        assert status == 200 and doc["state"] == "cancelled"
        assert doc["exit_code"] == 130
        # A second cancel (no longer queued) conflicts.
        assert wsgi_call(app, "DELETE", f"/jobs/{job_id}")[0] == 409
        status, doc = wsgi_call(app, "GET", "/status")
        assert doc["queue_depth"] == 0
        assert doc["jobs"] == {
            "queued": 0,
            "running": 0,
            "done": 0,
            "failed": 0,
            "cancelled": 1,
        }

    def test_oversized_submission(self, app):
        environ = {
            "REQUEST_METHOD": "POST",
            "PATH_INFO": "/studies",
            "CONTENT_LENGTH": str(2 << 20),
            "wsgi.input": io.BytesIO(b"{}"),
        }
        captured = {}
        app(environ, lambda s, h: captured.update(status=s))
        assert captured["status"].startswith("413")


class TestServiceExecution:
    """End-to-end through the queue against one shared sqlite store."""

    @pytest.fixture(scope="class")
    def live(self, tmp_path_factory):
        store = tmp_path_factory.mktemp("service") / "runs.sqlite"
        service = SweepService(f"sqlite:{store}", jobs=2).start()
        yield ServiceApp(service)
        service.shutdown()

    def test_submit_poll_fetch(self, live):
        status, doc = wsgi_call(live, "POST", "/studies", stability_doc())
        assert status == 202
        doc = poll_done(live, doc["id"])
        assert doc["state"] == "done" and doc["exit_code"] == 0
        assert doc["executed"] == 2 and doc["cached"] == 0
        assert {run["state"] for run in doc["runs"]} == {"done"}
        status, frame = wsgi_call(live, "GET", f"/jobs/{doc['id']}/results")
        assert status == 200
        assert frame["columns"][0] == "run_id" and len(frame["rows"]) == 2
        run_id = doc["runs"][0]["run_id"]
        status, run_doc = wsgi_call(live, "GET", f"/jobs/{doc['id']}/runs/{run_id}")
        assert status == 200
        assert run_doc["schema"] == RUN_RESULT_SCHEMA
        assert run_doc["run_id"] == run_id
        assert run_doc["result"]["experiment"] == "stability"
        assert wsgi_call(live, "GET", f"/jobs/{doc['id']}/runs/zzz")[0] == 404

    def test_identical_resubmission_is_all_cache_hits(self, live):
        status, doc = wsgi_call(live, "POST", "/studies", stability_doc())
        assert status == 202
        doc = poll_done(live, doc["id"])
        assert doc["state"] == "done"
        assert doc["cached"] == 2 and doc["executed"] == 0
        assert {run["state"] for run in doc["runs"]} == {"cached"}

    def test_concurrent_overlapping_submissions_dedupe(self, live):
        # Fresh content keys (slots=1600); the two grids overlap on
        # seeds 4 and 5. Whichever job the scheduler runs first executes
        # its runs; the other gets the overlap as pure cache hits — one
        # execution per content key across both clients.
        docs = [
            stability_doc(seeds=(3, 4, 5), slots=1600),
            stability_doc(seeds=(4, 5, 6), slots=1600),
        ]
        ids = [None, None]

        def submit(index):
            status, doc = wsgi_call(live, "POST", "/studies", docs[index])
            assert status == 202
            ids[index] = doc["id"]

        threads = [threading.Thread(target=submit, args=(i,)) for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        done = [poll_done(live, job_id) for job_id in ids]
        assert all(doc["state"] == "done" for doc in done)
        assert sum(doc["executed"] for doc in done) == 4  # seeds 3,4,5,6
        assert sum(doc["cached"] for doc in done) == 2  # the overlap
        assert all(doc["completed"] == 3 for doc in done)

    def test_chaos_job_fails_without_wedging_the_queue(self, live):
        # One raising run under continue: the job completes with a typed
        # failure and the sweep CLI's continue-with-failures exit code.
        chaos = stability_doc(seeds=(3, 4), slots=1700)
        chaos.update(on_error="continue", fault_plan="0=raise")
        status, doc = wsgi_call(live, "POST", "/studies", chaos)
        assert status == 202 and doc["fault_plan"] == "0=raise"
        doc = poll_done(live, doc["id"])
        assert doc["state"] == "done" and doc["exit_code"] == 4
        assert doc["failed_runs"] == 1 and len(doc["failures"]) == 1
        failure = doc["failures"][0]
        assert failure["schema"] == RUN_FAILURE_SCHEMA
        assert failure["kind"] == "exception"
        # Under the default fail policy the same plan fails the job...
        chaos = stability_doc(seeds=(3, 4), slots=1800)
        chaos["fault_plan"] = "0=raise"
        status, doc = wsgi_call(live, "POST", "/studies", chaos)
        doc = poll_done(live, doc["id"])
        assert doc["state"] == "failed" and doc["exit_code"] == 1
        assert "InjectedFault" in doc["error"]
        # ... and the queue keeps serving the next job regardless.
        status, doc = wsgi_call(live, "POST", "/studies", stability_doc())
        doc = poll_done(live, doc["id"])
        assert doc["state"] == "done"
        status, status_doc = wsgi_call(live, "GET", "/status")
        assert status_doc["jobs"]["failed"] == 1
        assert status_doc["failure_count"] == 1


def open_stream(app, job_id, last_event_id=None, via_query=False):
    """GET /jobs/<id>/events; returns (captured, body iterator)."""
    environ = {
        "REQUEST_METHOD": "GET",
        "PATH_INFO": f"/jobs/{job_id}/events",
        "QUERY_STRING": "",
        "CONTENT_LENGTH": "0",
        "wsgi.input": io.BytesIO(b""),
    }
    if last_event_id is not None:
        if via_query:
            environ["QUERY_STRING"] = f"last_event_id={last_event_id}"
        else:
            environ["HTTP_LAST_EVENT_ID"] = str(last_event_id)
    captured = {}

    def start_response(status, headers):
        captured["status"] = int(status.split()[0])
        captured["headers"] = dict(headers)

    return captured, app(environ, start_response)


def parse_frames(raw: bytes):
    """SSE bytes -> [(id, event kind, data dict)]; keepalives skipped."""
    frames = []
    for block in raw.decode().split("\n\n"):
        if not block.strip() or block.startswith(":"):
            continue
        fields = {}
        for line in block.split("\n"):
            key, _, value = line.partition(": ")
            fields[key] = value
        frames.append((int(fields["id"]), fields["event"], json.loads(fields["data"])))
    return frames


def read_stream(app, job_id, **kwargs):
    captured, body = open_stream(app, job_id, **kwargs)
    assert captured["status"] == 200
    assert captured["headers"]["Content-Type"].startswith("text/event-stream")
    assert "Content-Length" not in captured["headers"]  # close-delimited
    return parse_frames(b"".join(body))


def assert_stream_grammar(frames, cached=False):
    """Per-run SSE grammar: Started (Progress|Sample)* terminal, once."""
    by_run = {}
    for _, kind, data in frames:
        by_run.setdefault(data["run_id"], []).append((kind, data))
    assert by_run
    for run_id, stream in by_run.items():
        kinds = [kind for kind, _ in stream]
        assert kinds[0] == "RunStarted", run_id
        assert kinds[-1] in ("RunFinished", "RunFailed"), run_id
        assert kinds.count("RunStarted") == 1
        assert kinds.count("RunFinished") + kinds.count("RunFailed") == 1
        if cached:
            assert stream[-1][1]["cached"] is True
    return by_run


class TestEventStream:
    """The SSE endpoint: framing, per-run grammar, resume, disconnect."""

    @pytest.fixture(scope="class")
    def live(self, tmp_path_factory):
        store = tmp_path_factory.mktemp("events") / "runs.sqlite"
        service = SweepService(f"sqlite:{store}", jobs=2).start()
        app = ServiceApp(service)
        # Short keepalives so idle waits surface quickly in tests.
        app.sse_keepalive_s = 0.05
        yield app
        service.shutdown()

    def _submit(self, live, **extra):
        status, doc = wsgi_call(live, "POST", "/studies", stability_doc(**extra))
        assert status == 202
        return doc["id"]

    def test_live_stream_full_grammar_and_monotonic_ids(self, live):
        job_id = self._submit(live)
        # Attach while the job runs: the stream follows execution and
        # closes on its own once the job is terminal.
        frames = read_stream(live, job_id)
        ids = [frame_id for frame_id, _, _ in frames]
        assert ids == sorted(ids) and len(set(ids)) == len(ids)
        by_run = assert_stream_grammar(frames)
        assert len(by_run) == 2
        assert poll_done(live, job_id)["state"] == "done"

    def test_cached_job_streams_immediate_finish(self, live):
        first = self._submit(live, slots=1600)
        poll_done(live, first)
        job_id = self._submit(live, slots=1600)  # all cache hits
        doc = poll_done(live, job_id)
        assert doc["cached"] == 2
        frames = read_stream(live, job_id)
        by_run = assert_stream_grammar(frames, cached=True)
        assert all(len(stream) == 2 for stream in by_run.values())

    @pytest.mark.parametrize("via_query", [False, True])
    def test_last_event_id_resumes_without_replay(self, live, via_query):
        job_id = self._submit(live, slots=1700)
        poll_done(live, job_id)
        frames = read_stream(live, job_id)
        assert len(frames) >= 4
        cut = frames[1][0]  # resume after the second event
        resumed = read_stream(
            live, job_id, last_event_id=cut, via_query=via_query
        )
        assert resumed == frames[2:]  # nothing seen replays
        # Resuming from the last id yields nothing and closes cleanly.
        assert read_stream(live, job_id, last_event_id=frames[-1][0]) == []

    def test_bad_last_event_id_replays_from_start(self, live):
        job_id = self._submit(live, slots=1700)  # cached by now
        poll_done(live, job_id)
        frames = read_stream(live, job_id)
        assert read_stream(live, job_id, last_event_id="bogus") == frames

    def test_client_disconnect_mid_run_leaves_job_unharmed(self, live):
        job_id = self._submit(live, slots=1800)
        captured, body = open_stream(live, job_id)
        # Read one chunk, then vanish (closing the generator is what
        # the WSGI server does when the client connection drops).
        first = next(iter(body))
        assert first  # a frame or a keepalive comment
        body.close()
        doc = poll_done(live, job_id)
        assert doc["state"] == "done"
        # The full log is still replayable after the disconnect.
        assert_stream_grammar(read_stream(live, job_id))

    def test_keepalives_flow_while_idle(self, live):
        # A queued/running job with nothing new to say emits comment
        # keepalives so dead connections surface as write errors.
        job_id = self._submit(live, slots=1900)
        captured, body = open_stream(live, job_id)
        chunks = []
        for chunk in body:
            chunks.append(chunk)
            if chunk.startswith(b":"):
                break
            if len(chunks) > 200:  # the job finished too fast to idle
                break
        body.close()
        assert any(chunk.startswith(b":") for chunk in chunks) or len(chunks) > 200
        poll_done(live, job_id)

    def test_events_endpoint_rejects_non_get(self, live):
        job_id = self._submit(live, slots=2000)
        poll_done(live, job_id)
        environ = {
            "REQUEST_METHOD": "POST",
            "PATH_INFO": f"/jobs/{job_id}/events",
            "CONTENT_LENGTH": "0",
            "wsgi.input": io.BytesIO(b""),
        }
        captured = {}

        def start_response(status, headers):
            captured["status"] = int(status.split()[0])

        body = live(environ, start_response)
        b"".join(body)
        assert captured["status"] == 405


class TestCompareByteIdentity:
    """The acceptance contract: HTTP compare == CLI compare, byte for byte."""

    def test_http_compare_matches_cli(self, tmp_path):
        store = tmp_path / "runs.sqlite"
        service = SweepService(f"sqlite:{store}", jobs=2).start()
        app = ServiceApp(service)
        try:
            doc = {
                "experiment": "meshgen",
                "set": FAST_MESHGEN,
                "grid": {"algorithm": ["none", "ezflow"]},
            }
            status, job = wsgi_call(app, "POST", "/studies", doc)
            assert status == 202
            job = poll_done(app, job["id"], timeout=300.0)
            assert job["state"] == "done" and job["executed"] == 2
            status, markdown = wsgi_call(app, "GET", f"/jobs/{job['id']}/compare.md")
            assert status == 200
            status, table = wsgi_call(app, "GET", f"/jobs/{job['id']}/compare")
            assert status == 200
            assert table["markdown"] + "\n" == markdown
            assert table["incomplete"] is False
            assert table["columns"][0] == "metric"
        finally:
            service.shutdown()
        # The CLI rendering the same store must produce the same bytes.
        cli = subprocess.run(
            [sys.executable, "-m", "repro.experiments", "compare", str(store)],
            capture_output=True,
            text=True,
            env={**os.environ, "PYTHONPATH": "src"},
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        assert cli.returncode == 0, cli.stderr
        assert cli.stdout == markdown

    def test_compare_query_knobs_and_errors(self, tmp_path):
        service = SweepService(f"sqlite:{tmp_path / 'r.sqlite'}", jobs=1).start()
        app = ServiceApp(service)
        try:
            doc = {
                "experiment": "meshgen",
                "set": dict(FAST_MESHGEN, duration_s=2.0),
                "grid": {"algorithm": ["none", "ezflow"]},
            }
            status, job = wsgi_call(app, "POST", "/studies", doc)
            job = poll_done(app, job["id"], timeout=300.0)
            assert job["state"] == "done"
            path = f"/jobs/{job['id']}/compare"
            status, table = wsgi_call(
                app, "GET", path, query="metrics=aggregate_kbps&baseline=algorithm=none"
            )
            assert status == 200
            assert [row[0] for row in table["rows"]] == ["aggregate_kbps"]
            # Unknown metrics render as blank cells, like the CLI flag.
            status, table = wsgi_call(app, "GET", path, query="metrics=bogus_metric")
            assert status == 200 and table["rows"][0][0] == "bogus_metric"
            # A baseline nothing matches is a comparison error -> 400.
            status, doc = wsgi_call(app, "GET", path, query="baseline=algorithm=zzz")
            assert status == 400 and "baseline" in doc["error"]
            status, doc = wsgi_call(app, "GET", path, query="baseline=broken")
            assert status == 400
        finally:
            service.shutdown()


class TestServiceCli:
    def test_serve_and_drain_over_real_http(self, tmp_path):
        """python -m repro.service: submit over TCP, SIGINT drains, exit 0."""
        store = tmp_path / "runs.sqlite"
        repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.service",
                "--store",
                f"sqlite:{store}",
                "--port",
                "0",
                "--quiet",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env={**os.environ, "PYTHONPATH": "src"},
            cwd=repo,
        )
        try:
            banner = proc.stdout.readline()
            assert "repro sweep service on http://" in banner
            base = banner.split()[4].rstrip("/")
            doc = stability_doc()
            request = urllib.request.Request(
                f"{base}/studies",
                data=json.dumps(doc).encode(),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with urllib.request.urlopen(request, timeout=30) as response:
                assert response.status == 202
                job = json.loads(response.read())
            deadline = time.time() + 120
            while time.time() < deadline:
                with urllib.request.urlopen(
                    f"{base}/jobs/{job['id']}", timeout=30
                ) as response:
                    state = json.loads(response.read())["state"]
                if state in ("done", "failed"):
                    break
                time.sleep(0.2)
            assert state == "done"
            proc.send_signal(signal.SIGINT)
            out, _ = proc.communicate(timeout=60)
            assert proc.returncode == 0
            assert "drained" in out
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
