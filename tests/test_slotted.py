"""Tests for the slotted random-walk model and cw rules."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.slotted import (
    EZFlowRule,
    FixedCwRule,
    ModelConfig,
    SlottedChainModel,
)


class TestModelConfig:
    def test_paper_defaults(self):
        config = ModelConfig()
        assert config.hops == 4
        assert config.b_min == 0.05
        assert config.b_max == 20.0
        assert config.mincw == 16
        assert config.maxcw == 32768

    def test_validation(self):
        with pytest.raises(ValueError):
            ModelConfig(hops=1)
        with pytest.raises(ValueError):
            ModelConfig(b_min=5.0, b_max=1.0)


class TestEZFlowRule:
    def test_doubles_above_bmax(self):
        config = ModelConfig()
        rule = EZFlowRule(config)
        cw = [16, 16, 16, 16]
        rule.update(cw, [float("inf"), 25.0, 0.0, 0.0])
        assert cw[0] == 32  # b1 > bmax -> source doubles

    def test_halves_below_bmin(self):
        config = ModelConfig()
        rule = EZFlowRule(config)
        cw = [64, 64, 64, 64]
        rule.update(cw, [float("inf"), 0.0, 0.0, 0.0])
        assert cw == [32, 32, 32, 32]

    def test_mid_band_untouched(self):
        config = ModelConfig()
        rule = EZFlowRule(config)
        cw = [64, 64, 64, 64]
        rule.update(cw, [float("inf"), 5.0, 5.0, 5.0])
        assert cw[:3] == [64, 64, 64]
        # cw3 reacts to the destination's (always empty) buffer
        assert cw[3] == 32

    def test_bounds_respected(self):
        config = ModelConfig()
        rule = EZFlowRule(config)
        cw = [config.maxcw, config.mincw, 16, 16]
        rule.update(cw, [float("inf"), 25.0, 0.0, 0.0])
        assert cw[0] == config.maxcw
        assert cw[1] == config.mincw

    def test_fixed_rule_never_changes(self):
        cw = [16, 32, 64, 128]
        FixedCwRule().update(cw, [float("inf"), 100.0, 0.0, 0.0])
        assert cw == [16, 32, 64, 128]


class TestSlottedChainModel:
    def test_initial_state(self):
        model = SlottedChainModel(ModelConfig(hops=4))
        assert model.relay_buffers == (0.0, 0.0, 0.0)
        assert model.buffers[0] == float("inf")
        assert model.cw == [16, 16, 16, 16]

    def test_custom_initial_state(self):
        model = SlottedChainModel(
            ModelConfig(hops=4),
            initial_buffers=[5, 0, 2],
            initial_cw=[32, 16, 16, 64],
        )
        assert model.relay_buffers == (5.0, 0.0, 2.0)
        assert model.cw == [32, 16, 16, 64]

    def test_initial_state_validated(self):
        with pytest.raises(ValueError):
            SlottedChainModel(ModelConfig(hops=4), initial_buffers=[1, 2])
        with pytest.raises(ValueError):
            SlottedChainModel(ModelConfig(hops=4), initial_cw=[16, 16])

    def test_step_conserves_packets(self):
        """Eq (3): every step, sum of relay buffers changes by z0 - z3."""
        model = SlottedChainModel(ModelConfig(hops=4), seed=1)
        for _ in range(2000):
            before = model.lyapunov()
            pattern = model.step()
            after = model.lyapunov()
            assert after - before == pattern[0] - pattern[3]

    def test_buffers_never_negative(self):
        model = SlottedChainModel(ModelConfig(hops=5), seed=2)
        for _ in range(5000):
            model.step()
            assert all(b >= 0 for b in model.relay_buffers)

    def test_delivered_counts_sink_arrivals(self):
        model = SlottedChainModel(ModelConfig(hops=4), seed=3)
        model.run(5000)
        assert model.delivered > 0

    def test_buffer_cap_enforced(self):
        model = SlottedChainModel(
            ModelConfig(hops=4, buffer_cap=10), rule=FixedCwRule(), seed=4
        )
        model.run(20_000)
        assert all(b <= 10 for b in model.relay_buffers)

    def test_deterministic_given_seed(self):
        a = SlottedChainModel(ModelConfig(hops=4), seed=9)
        b = SlottedChainModel(ModelConfig(hops=4), seed=9)
        a.run(1000)
        b.run(1000)
        assert a.relay_buffers == b.relay_buffers
        assert a.cw == b.cw

    def test_record_every(self):
        model = SlottedChainModel(ModelConfig(hops=4), seed=5)
        trajectory = model.run(1000, record_every=100)
        assert len(trajectory) == 10

    def test_fixed_cw_4hop_unstable(self):
        """The [9] instability: b1 grows roughly linearly without EZ-flow."""
        model = SlottedChainModel(ModelConfig(hops=4), rule=FixedCwRule(), seed=7)
        model.run(100_000)
        assert model.relay_buffers[0] > 500

    def test_ezflow_4hop_stable(self):
        config = ModelConfig(hops=4)
        model = SlottedChainModel(config, rule=EZFlowRule(config), seed=7)
        model.run(100_000)
        assert model.relay_buffers[0] < 100

    def test_three_hop_stable_even_fixed(self):
        """K=3 is the stable boundary case of [9]."""
        model = SlottedChainModel(ModelConfig(hops=3), rule=FixedCwRule(), seed=7)
        model.run(100_000)
        assert model.relay_buffers[0] < 2000  # no linear blow-up

    @given(st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_property_cw_stays_power_of_two(self, seed):
        config = ModelConfig(hops=4)
        model = SlottedChainModel(config, seed=seed)
        model.run(500)
        for cw in model.cw:
            assert config.mincw <= cw <= config.maxcw
            assert cw & (cw - 1) == 0
