"""Tests for the pluggable result stores (repro.results.store).

Covers content-key identity (spelling-independent dedupe), both
backends' put/get/index primitives, checkpoint/resume through
SweepRunner/Study (including the injected kill hook), lazy streaming
aggregation over a store, torn-checkpoint recovery, and the CLI
``--store``/``--resume`` surfaces.
"""

import json
import os
import sqlite3
import warnings

import pytest

from repro.experiments.__main__ import main
from repro.experiments.runner import (
    FAULT_ENV,
    InjectedSweepFault,
    RunRecord,
    SweepRunner,
    _grid_requests,
    execute_request,
    request_for,
)
from repro.results import (
    DirectoryStore,
    ResultLoadError,
    ResultSet,
    SqliteStore,
    Study,
    compare,
    content_key,
    execute_requests,
    open_store,
    render_compare,
)
from repro.results.store import CHECKPOINT_SIDECAR, request_key

# A scenario cheap enough to run many times in tests.
FAST = {"slots": 1500, "trials": 15}

# A meshgen point small enough for compare/export tests.
FAST_MESHGEN = {"nodes": 9, "flows": 2, "duration_s": 3.0, "warmup_s": 1.0}


def fast_request(**extra):
    kwargs = dict(FAST)
    kwargs.update(extra)
    return request_for("stability", kwargs)


def fast_record(**extra) -> RunRecord:
    return execute_request(fast_request(**extra))


def meshgen_requests(**extra):
    grid = {
        name: value if isinstance(value, list) else [value]
        for name, value in {**FAST_MESHGEN, **extra}.items()
    }
    grid.setdefault("algorithm", ["none", "ezflow"])
    grid.setdefault("seed", [7])
    grid.setdefault("topology", ["mesh"])
    return _grid_requests("meshgen", grid)


@pytest.fixture(params=["sqlite", "directory"])
def store(request, tmp_path):
    if request.param == "sqlite":
        backend = SqliteStore(str(tmp_path / "store.sqlite"))
    else:
        backend = DirectoryStore(str(tmp_path / "store"))
    yield backend
    backend.close()


class TestContentKey:
    def test_spelling_independent(self):
        # seed left at its declared default == seed set explicitly.
        from repro.experiments.specs import get_spec

        default_seed = get_spec("stability").defaults()["seed"]
        assert content_key("stability", FAST) == content_key(
            "stability", dict(FAST, seed=default_seed)
        )

    def test_seed_differentiates(self):
        assert content_key("stability", dict(FAST, seed=1)) != content_key(
            "stability", dict(FAST, seed=2)
        )

    def test_spec_differentiates(self):
        assert content_key("stability", {}) != content_key("meshgen", {})

    def test_cli_strings_match_typed_values(self):
        assert content_key("stability", {"slots": "1500"}) == content_key(
            "stability", {"slots": 1500}
        )

    def test_request_key_matches_content_key(self):
        request = fast_request(seed=3)
        assert request_key(request) == content_key("stability", dict(FAST, seed=3))


class TestStorePrimitives:
    def test_put_get_round_trip(self, store):
        record = fast_record(seed=3)
        key = store.put(record)
        assert key in store
        hit = store.get(record.request)
        assert hit is not None and hit.cached
        assert hit.wall_s == pytest.approx(record.wall_s)
        assert hit.result.to_dict() == record.result.to_dict()

    def test_get_miss_returns_none(self, store):
        assert store.get(fast_request(seed=99)) is None

    def test_get_hit_carries_incoming_request(self, store):
        store.put(fast_record(seed=3))
        renamed = fast_request(seed=3)
        renamed = type(renamed)(renamed.spec_id, renamed.kwargs, "custom~name")
        hit = store.get(renamed)
        assert hit.request.run_id == "custom~name"

    def test_dedupe_on_content_key(self, store):
        first = fast_record(seed=3)
        store.put(first)
        store.put(fast_record(seed=3))
        assert len(store) == 1
        assert store.keys() == [request_key(first.request)]

    def test_len_and_keys_sorted(self, store):
        for seed in (5, 3, 4):
            store.put(fast_record(seed=seed))
        assert len(store) == 3
        assert store.keys() == sorted(store.keys())

    def test_index_streams_sorted_by_run_id(self, store):
        for seed in (5, 3):
            store.put(fast_record(seed=seed))
        entries = list(store.index())
        assert [e["run_id"] for e in entries] == sorted(
            e["run_id"] for e in entries
        )
        for entry in entries:
            assert entry["spec_id"] == "stability"
            assert entry["kwargs"]["slots"] == FAST["slots"]
            assert isinstance(entry["scalars"], dict)

    def test_index_carries_scalar_metrics(self, store):
        record = execute_request(meshgen_requests()[0])
        store.put(record)
        (entry,) = list(store.index())
        assert entry["scalars"]["aggregate_kbps"] == pytest.approx(
            ResultSet.from_records([record]).runs[0].scalars["aggregate_kbps"]
        )

    def test_load_result_unknown_key(self, store):
        with pytest.raises((ResultLoadError, KeyError)):
            store.load_result("no-such-key")

    def test_digest_equal_for_equal_contents(self, store, tmp_path):
        records = [fast_record(seed=s) for s in (3, 4)]
        for record in records:
            store.put(record)
        other = SqliteStore(str(tmp_path / "other.sqlite"))
        for record in reversed(records):  # different insert order
            other.put(record)
        try:
            assert store.digest() == other.digest()
        finally:
            other.close()

    def test_digest_differs_for_different_contents(self, store, tmp_path):
        store.put(fast_record(seed=3))
        other = SqliteStore(str(tmp_path / "other.sqlite"))
        other.put(fast_record(seed=4))
        try:
            assert store.digest() != other.digest()
        finally:
            other.close()


class TestSqliteBackend:
    def test_schema_version_mismatch_raises(self, tmp_path):
        path = str(tmp_path / "store.sqlite")
        SqliteStore(path).close()
        conn = sqlite3.connect(path)
        conn.execute("UPDATE meta SET value='999' WHERE key='schema'")
        conn.commit()
        conn.close()
        with pytest.raises(ResultLoadError, match="schema v999"):
            SqliteStore(path)

    def test_scalars_in_indexed_columns(self, tmp_path):
        store = SqliteStore(str(tmp_path / "store.sqlite"))
        record = execute_request(meshgen_requests()[0])
        key = store.put(record)
        rows = dict(
            store._conn.execute(
                "SELECT name, num FROM scalars WHERE content_key=?", (key,)
            )
        )
        store.close()
        scalars = ResultSet.from_records([record])[record.request.run_id].scalars
        numeric = {
            name: value
            for name, value in scalars.items()
            if isinstance(value, (int, float)) and not isinstance(value, bool)
        }
        for name, value in numeric.items():
            assert rows[name] == pytest.approx(float(value))

    def test_result_set_is_lazy(self, tmp_path):
        store = SqliteStore(str(tmp_path / "store.sqlite"))
        for seed in (3, 4):
            store.put(fast_record(seed=seed))
        results = ResultSet.from_store(store)
        assert all(not run.materialized for run in results)
        frame = results.scalars_frame()
        assert len(frame.rows) == 2
        assert all(not run.materialized for run in results)  # still lazy
        first = results.runs[0]
        assert first.result.tables  # materialises on demand
        assert first.materialized
        store.close()

    def test_result_set_filters_before_materialising(self, tmp_path):
        store = SqliteStore(str(tmp_path / "store.sqlite"))
        for seed in (3, 4):
            store.put(fast_record(seed=seed))
        results = ResultSet.from_store(store, seed=3)
        assert len(results) == 1
        assert results.runs[0].param("seed") == 3
        store.close()

    def test_open_store_picks_backend(self, tmp_path):
        # The bare-path suffix shim still dispatches — but now under a
        # DeprecationWarning steering callers to explicit schemes.
        with pytest.warns(DeprecationWarning, match="explicit scheme"):
            assert isinstance(open_store(str(tmp_path / "a.sqlite")), SqliteStore)
        with pytest.warns(DeprecationWarning, match="suffix-based"):
            assert isinstance(open_store(str(tmp_path / "a.db")), SqliteStore)
        with pytest.warns(DeprecationWarning):
            assert isinstance(open_store(str(tmp_path / "tree")), DirectoryStore)
        # An existing regular file is sqlite regardless of suffix.
        path = str(tmp_path / "noext")
        SqliteStore(path).close()
        with pytest.warns(DeprecationWarning):
            assert isinstance(open_store(path), SqliteStore)

    def test_open_store_explicit_schemes(self, tmp_path, monkeypatch):
        # The unknown-prefix case below resolves "file:..." as a
        # relative path; run from tmp_path so the litter lands there.
        monkeypatch.chdir(tmp_path)
        # Schemes override suffix dispatch entirely: sqlite: forces the
        # sqlite backend on any path, dir: forces a tree even on a
        # .sqlite-looking path — and neither spelling warns.
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            store = open_store(f"sqlite:{tmp_path / 'anything.weird'}")
            assert isinstance(store, SqliteStore)
            store.close()
            store = open_store(f"dir:{tmp_path / 'tree.sqlite'}")
            assert isinstance(store, DirectoryStore)
            store.close()
            with pytest.raises(ValueError, match="empty path"):
                open_store("sqlite:")
            with pytest.raises(ValueError, match="empty path"):
                open_store("dir:")
        # Unknown prefixes are not schemes — they fall through to the
        # (deprecated) bare-path shim, so Windows drive letters stay
        # directory paths.
        with pytest.warns(DeprecationWarning):
            assert isinstance(open_store(f"file:{tmp_path / 'x'}"), DirectoryStore)

    def test_study_run_accepts_store_urls(self, tmp_path):
        url = f"sqlite:{tmp_path / 'runs.sqlite'}"
        first = Study("stability").set(**FAST).grid(seed=[3]).run(store=url)
        assert len(first) == 1
        hits = []
        Study("stability").set(**FAST).grid(seed=[3]).run(
            store=url, on_record=lambda record: hits.append(record.cached)
        )
        assert hits == [True]  # the url named the same backing store


class TestDirectoryBackend:
    def test_put_exports_run_dir_immediately(self, tmp_path):
        store = DirectoryStore(str(tmp_path / "tree"))
        record = fast_record(seed=3)
        store.put(record)
        run_dir = tmp_path / "tree" / record.request.run_id
        assert (run_dir / "result.json").is_file()
        assert (tmp_path / "tree" / CHECKPOINT_SIDECAR).is_file()

    def test_torn_checkpoint_treated_as_absent(self, tmp_path):
        store = DirectoryStore(str(tmp_path / "tree"))
        record = fast_record(seed=3)
        store.put(record)
        result_json = tmp_path / "tree" / record.request.run_id / "result.json"
        result_json.write_text("{ torn")
        assert store.get(record.request) is None  # re-runs instead of crashing

    def test_finalize_matches_plain_export(self, tmp_path):
        """A finalized store tree == ResultSet.save, manifest timing aside."""
        records = [execute_request(r) for r in meshgen_requests()]
        store = DirectoryStore(str(tmp_path / "tree"))
        for record in records:
            store.put(record)
        store.finalize(records)
        assert not (tmp_path / "tree" / CHECKPOINT_SIDECAR).exists()

        ResultSet.from_records(records).save(str(tmp_path / "plain"))
        compared = _tree_files(tmp_path / "tree")
        assert compared == _tree_files(tmp_path / "plain")
        for rel in compared:
            if rel == "manifest.json":
                continue
            assert (tmp_path / "tree" / rel).read_bytes() == (
                tmp_path / "plain" / rel
            ).read_bytes(), rel
        manifests = []
        for root in ("tree", "plain"):
            manifest = json.loads((tmp_path / root / "manifest.json").read_text())
            manifest.pop("timing")
            manifests.append(manifest)
        assert manifests[0] == manifests[1]

    def test_manifest_only_tree_resolves_entries(self, tmp_path):
        """A plain --out tree (no sidecar) is already a warm store."""
        records = [execute_request(r) for r in meshgen_requests()]
        ResultSet.from_records(records).save(str(tmp_path / "plain"))
        store = DirectoryStore(str(tmp_path / "plain"))
        hit = store.get(records[0].request)
        assert hit is not None and hit.cached
        assert hit.result.to_dict() == records[0].result.to_dict()


def _tree_files(root):
    found = []
    for dirpath, _dirnames, filenames in os.walk(root):
        for name in filenames:
            rel = os.path.relpath(os.path.join(dirpath, name), root)
            found.append(rel)
    return sorted(found)


class TestSweepResume:
    def test_second_run_is_all_cache_hits(self, store):
        requests = [fast_request(seed=s) for s in (3, 4, 5)]
        first = SweepRunner(jobs=1).run(requests, store=store)
        assert all(not record.cached for record in first)
        second = SweepRunner(jobs=1).run(requests, store=store)
        assert all(record.cached for record in second)
        assert [r.request.run_id for r in second] == [r.run_id for r in requests]
        for before, after in zip(first, second):
            assert before.result.to_dict() == after.result.to_dict()

    def test_on_record_fires_in_request_order_with_hits(self, store):
        requests = [fast_request(seed=s) for s in (3, 4, 5)]
        SweepRunner(jobs=1).run(requests[1:2], store=store)  # pre-warm seed=4
        seen = []
        SweepRunner(jobs=1).run(
            requests, on_record=lambda r: seen.append(r.request.run_id), store=store
        )
        assert seen == [r.run_id for r in requests]

    def test_injected_fault_stops_after_n_executed(self, store, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "2")
        requests = [fast_request(seed=s) for s in (3, 4, 5)]
        with pytest.raises(InjectedSweepFault):
            SweepRunner(jobs=1).run(requests, store=store)
        assert len(store) == 2

    def test_cache_hits_do_not_count_toward_fault(self, store, monkeypatch):
        requests = [fast_request(seed=s) for s in (3, 4, 5)]
        SweepRunner(jobs=1).run(requests, store=store)
        monkeypatch.setenv(FAULT_ENV, "1")
        # All requests cached: nothing executes, so no fault fires.
        records = SweepRunner(jobs=1).run(requests, store=store)
        assert all(record.cached for record in records)

    def test_resumed_store_equals_uninterrupted(self, tmp_path, monkeypatch):
        requests = [fast_request(seed=s) for s in (3, 4, 5, 6)]
        interrupted = SqliteStore(str(tmp_path / "interrupted.sqlite"))
        monkeypatch.setenv(FAULT_ENV, "2")
        with pytest.raises(InjectedSweepFault):
            SweepRunner(jobs=1).run(requests, store=interrupted)
        monkeypatch.delenv(FAULT_ENV)
        resumed = SweepRunner(jobs=1).run(requests, store=interrupted)
        assert sum(record.cached for record in resumed) == 2

        reference = SqliteStore(str(tmp_path / "reference.sqlite"))
        SweepRunner(jobs=1).run(requests, store=reference)
        try:
            assert interrupted.digest() == reference.digest()
        finally:
            interrupted.close()
            reference.close()

    @pytest.mark.slow
    def test_resume_parallel_matches_serial(self, tmp_path, monkeypatch):
        requests = [fast_request(seed=s) for s in (3, 4, 5, 6)]
        parallel = SqliteStore(str(tmp_path / "parallel.sqlite"))
        monkeypatch.setenv(FAULT_ENV, "2")
        with SweepRunner(jobs=2) as runner:
            with pytest.raises(InjectedSweepFault):
                runner.run(requests, store=parallel)
            monkeypatch.delenv(FAULT_ENV)
            runner.run(requests, store=parallel)
        serial = SqliteStore(str(tmp_path / "serial.sqlite"))
        SweepRunner(jobs=1).run(requests, store=serial)
        try:
            assert parallel.digest() == serial.digest()
        finally:
            parallel.close()
            serial.close()

    def test_execute_requests_and_study_accept_store(self, tmp_path):
        store = SqliteStore(str(tmp_path / "store.sqlite"))
        results = (
            Study("stability").set(**FAST).grid(seed=[3, 4]).run(store=store)
        )
        assert len(results) == 2
        again = execute_requests(
            Study("stability").set(**FAST).grid(seed=[3, 4]).requests(),
            store=store,
        )
        assert len(store) == 2
        assert {run.run_id for run in again} == {run.run_id for run in results}
        store.close()


class TestStreamingCompare:
    def test_compare_over_store_matches_live(self, tmp_path):
        records = [execute_request(r) for r in meshgen_requests(seed=[7, 11])]
        live = render_compare(compare(ResultSet.from_records(records)))
        store = SqliteStore(str(tmp_path / "store.sqlite"))
        for record in records:
            store.put(record)
        stored = render_compare(compare(ResultSet.from_store(store)))
        store.close()
        assert stored == live


class TestResultLoadErrorSurface:
    def test_missing_artifact_names_run_and_file(self, tmp_path):
        from repro.results import RunResult

        with pytest.raises(ResultLoadError) as excinfo:
            RunResult.load(str(tmp_path / "absent"), run_id="r1")
        assert excinfo.value.run_id == "r1"
        assert "result.json" in str(excinfo.value.artifact)

    def test_corrupt_artifact_is_load_error(self, tmp_path):
        run_dir = tmp_path / "r1"
        run_dir.mkdir()
        (run_dir / "result.json").write_text("{ nope")
        from repro.results import RunResult

        with pytest.raises(ResultLoadError, match="corrupt"):
            RunResult.load(str(run_dir), run_id="r1")


class TestCLI:
    def sweep_argv(self, *extra):
        return [
            "sweep",
            "stability",
            "--set",
            "slots=1500",
            "--set",
            "trials=15",
            "--grid",
            "seed=3,4",
            *extra,
        ]

    def test_resume_requires_store(self, capsys):
        assert main(self.sweep_argv("--resume")) == 2
        assert "--resume requires --store" in capsys.readouterr().err

    def test_sweep_store_reports_hits(self, tmp_path, capsys):
        store_path = str(tmp_path / "store.sqlite")
        assert main(self.sweep_argv("--store", store_path)) == 0
        assert "2 executed" in capsys.readouterr().err
        assert main(self.sweep_argv("--store", store_path, "--resume")) == 0
        err = capsys.readouterr().err
        assert "[resuming]" in err
        assert "2 cache hit(s), 0 executed" in err

    def test_fault_exit_code_then_resume(self, tmp_path, capsys, monkeypatch):
        store_path = str(tmp_path / "store.sqlite")
        monkeypatch.setenv(FAULT_ENV, "1")
        assert main(self.sweep_argv("--store", store_path)) == 3
        assert "injected fault after 1 executed" in capsys.readouterr().err
        monkeypatch.delenv(FAULT_ENV)
        out = str(tmp_path / "out")
        assert (
            main(self.sweep_argv("--store", store_path, "--resume", "--out", out))
            == 0
        )
        assert "1 cache hit(s), 1 executed" in capsys.readouterr().err
        assert os.path.isfile(os.path.join(out, "manifest.json"))

    def test_run_accepts_store(self, tmp_path, capsys):
        store_path = str(tmp_path / "store.sqlite")
        argv = [
            "run",
            "stability",
            "--set",
            "slots=1500",
            "--set",
            "trials=15",
            "--store",
            store_path,
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        assert "cache hit" in capsys.readouterr().err

    def test_compare_store_file_target(self, tmp_path, capsys):
        store_path = str(tmp_path / "store.sqlite")
        sweep = [
            "sweep",
            "meshgen",
            "--set",
            "nodes=9",
            "--set",
            "flows=2",
            "--set",
            "duration_s=3",
            "--set",
            "warmup_s=1",
            "--set",
            "topology=mesh",
            "--grid",
            "algorithm=none,ezflow",
            "--store",
            store_path,
        ]
        assert main(sweep) == 0
        capsys.readouterr()
        assert main(["compare", store_path]) == 0
        out = capsys.readouterr().out
        assert "Deltas vs algorithm=none" in out

    def test_compare_rejects_grid_on_store_target(self, tmp_path, capsys):
        store_path = str(tmp_path / "store.sqlite")
        SqliteStore(store_path).close()
        assert main(["compare", store_path, "--set", "nodes=9"]) == 2
        assert "store targets" in capsys.readouterr().err
