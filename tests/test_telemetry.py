"""Tests for the live telemetry plane: events, hub, gate, transport,
probe points, consumers, and the sweep runner's stream guarantees."""

import json
import os
import queue

import pytest

from repro.experiments.faults import FaultPlan
from repro.experiments.runner import ErrorPolicy, SweepRunner, request_for
from repro.results.store import SqliteStore
from repro.sim.engine import Engine
from repro.telemetry import (
    DROPPABLE_KINDS,
    EVENT_TYPES,
    MetricSample,
    ProbeSession,
    RunEventGate,
    RunFailed,
    RunFinished,
    RunProgress,
    RunStarted,
    TERMINAL_KINDS,
    TelemetryHub,
    TelemetryRecorder,
    WorkerPublisher,
    activate_probe,
    current_probe,
    drain_channel,
    event_from_json_dict,
    event_to_json_dict,
    probe_scope,
)

#: A fast, deterministic scenario for runner-level stream tests.
FAST = {"slots": 300, "trials": 5}

#: Zero-backoff retry policy so retry tests do not sleep.
RETRY_2 = ErrorPolicy("continue", retries=2, backoff_base_s=0.0, backoff_cap_s=0.0)

#: A small mesh on the slotted tier: rich mid-run samples, ~100 ms wall.
MESH_FAST = {
    "nodes": 9,
    "flows": 2,
    "duration_s": 4.0,
    "warmup_s": 1.0,
    "fidelity": "slotted",
}


def fast_requests(seeds=(1, 2, 3)):
    return [request_for("stability", dict(FAST, seed=seed)) for seed in seeds]


def mesh_requests(seeds=(1, 2)):
    return [request_for("meshgen", dict(MESH_FAST, seed=seed)) for seed in seeds]


def collect_hub(interval_s=1.0):
    """A hub with one list-appending listener; returns (hub, events)."""
    hub = TelemetryHub(sample_interval_s=interval_s)
    events = []
    hub.subscribe(events.append)
    return hub, events


def stream_for(events, run_id):
    return [e for e in events if e.run_id == run_id]


def assert_grammar(events, run_id, terminal=RunFinished):
    """One run's stream is RunStarted (P|M)* terminal, exactly once."""
    stream = stream_for(events, run_id)
    assert stream, f"no events for {run_id}"
    assert stream[0].kind == RunStarted.kind
    assert stream[-1].kind == terminal.kind
    kinds = [e.kind for e in stream]
    assert kinds.count(RunStarted.kind) == 1
    assert sum(kinds.count(k) for k in TERMINAL_KINDS) == 1
    for middle in stream[1:-1]:
        assert middle.kind in DROPPABLE_KINDS
    return stream


class TestEvents:
    @pytest.mark.parametrize(
        "event",
        [
            RunStarted(run_id="r", spec_id="meshgen", attempt=2),
            RunProgress(run_id="r", time_s=2.0, events=17, frac=0.5),
            MetricSample(
                run_id="r", time_s=2.0, metric="goodput_kbps", values={"0": 12.5}
            ),
            RunFinished(run_id="r", cached=True),
            RunFailed(
                run_id="r", failure_kind="timeout", error="RunTimeout", message="slow"
            ),
        ],
    )
    def test_json_round_trip(self, event):
        doc = event_to_json_dict(event)
        assert doc["kind"] == event.kind
        json.dumps(doc)  # serialisable
        assert event_from_json_dict(doc) == event

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown telemetry event kind"):
            event_from_json_dict({"kind": "Nope", "run_id": "r"})

    def test_kind_partitions(self):
        assert TERMINAL_KINDS == {RunFinished.kind, RunFailed.kind}
        assert DROPPABLE_KINDS == {RunProgress.kind, MetricSample.kind}
        assert set(EVENT_TYPES) == TERMINAL_KINDS | DROPPABLE_KINDS | {
            RunStarted.kind
        }


class TestHub:
    def test_attached_tracks_listeners(self):
        hub = TelemetryHub()
        assert not hub.attached
        listener = hub.subscribe(lambda e: None)
        assert hub.attached
        hub.unsubscribe(listener)
        assert not hub.attached
        hub.unsubscribe(listener)  # unknown listener: ignored

    def test_emit_fans_out_in_subscription_order(self):
        hub = TelemetryHub()
        seen = []
        hub.subscribe(lambda e: seen.append(("a", e)))
        hub.subscribe(lambda e: seen.append(("b", e)))
        event = RunStarted(run_id="r")
        hub.emit(event)
        assert seen == [("a", event), ("b", event)]

    def test_listener_errors_are_isolated(self):
        hub = TelemetryHub()

        def broken(event):
            raise RuntimeError("listener bug")

        hub.subscribe(broken)
        seen = []
        hub.subscribe(seen.append)
        hub.emit(RunStarted(run_id="r"))  # must not raise
        assert len(seen) == 1

    def test_interval_validated(self):
        with pytest.raises(ValueError):
            TelemetryHub(sample_interval_s=0)
        with pytest.raises(ValueError):
            TelemetryHub(sample_interval_s=-1.0)


class TestRunEventGate:
    def test_enforces_grammar(self):
        sink = []
        gate = RunEventGate(sink.append)
        assert gate.emit(RunStarted(run_id="r"))
        assert gate.emit(RunProgress(run_id="r", time_s=1.0, events=5, frac=0.5))
        assert gate.emit(RunFinished(run_id="r"))
        assert_grammar(sink, "r")

    def test_synthesises_missing_start(self):
        sink = []
        gate = RunEventGate(sink.append)
        gate.emit(RunProgress(run_id="r", time_s=1.0, events=5, frac=0.5))
        assert [e.kind for e in sink] == [RunStarted.kind, RunProgress.kind]

    def test_duplicate_start_collapses(self):
        sink = []
        gate = RunEventGate(sink.append)
        assert gate.emit(RunStarted(run_id="r"))
        assert not gate.emit(RunStarted(run_id="r"))
        assert len(sink) == 1

    def test_post_terminal_events_dropped(self):
        sink = []
        gate = RunEventGate(sink.append)
        gate.emit(RunStarted(run_id="r"))
        gate.emit(RunFailed(run_id="r"))
        assert not gate.emit(RunProgress(run_id="r", time_s=9.0, events=1, frac=1.0))
        assert not gate.emit(RunFinished(run_id="r"))
        assert_grammar(sink, "r", terminal=RunFailed)

    def test_runs_are_independent(self):
        sink = []
        gate = RunEventGate(sink.append)
        gate.emit(RunStarted(run_id="a"))
        gate.emit(RunFinished(run_id="a"))
        assert gate.emit(RunProgress(run_id="b", time_s=0.0, events=0, frac=0.0))
        assert_grammar(sink, "a")


class TestWorkerPublisher:
    def test_droppables_batch_until_batch_size(self):
        channel = queue.Queue()
        publisher = WorkerPublisher(channel, batch_size=3)
        for i in range(2):
            publisher.emit(RunProgress(run_id="r", time_s=i, events=i, frac=0.1))
        assert channel.empty()  # still buffering
        publisher.emit(RunProgress(run_id="r", time_s=2.0, events=2, frac=0.2))
        assert len(channel.get_nowait()) == 3

    def test_lifecycle_events_flush_immediately(self):
        channel = queue.Queue()
        publisher = WorkerPublisher(channel, batch_size=100)
        publisher.emit(RunProgress(run_id="r", time_s=0.0, events=0, frac=0.0))
        publisher.emit(RunStarted(run_id="r"))
        batch = channel.get_nowait()
        assert [e.kind for e in batch] == [RunProgress.kind, RunStarted.kind]

    def test_full_channel_never_blocks_and_drops_oldest_droppable(self):
        channel = queue.Queue(maxsize=1)
        channel.put_nowait(["occupied"])  # consumer is stuck
        publisher = WorkerPublisher(channel, batch_size=1, max_buffer=3)
        publisher.emit(RunStarted(run_id="r"))
        for i in range(5):
            publisher.emit(RunProgress(run_id="r", time_s=i, events=i, frac=0.1))
        # Bounded buffer: oldest droppables evicted, lifecycle retained.
        assert publisher.dropped == 3
        residual = publisher.take_residual()
        assert residual[0].kind == RunStarted.kind
        assert [e.time_s for e in residual[1:]] == [3, 4]

    def test_take_residual_clears_buffer(self):
        channel = queue.Queue(maxsize=1)
        channel.put_nowait(["occupied"])
        publisher = WorkerPublisher(channel, batch_size=10)
        publisher.emit(RunProgress(run_id="r", time_s=0.0, events=0, frac=0.0))
        assert len(publisher.take_residual()) == 1
        assert publisher.take_residual() == ()

    def test_drain_channel_delivers_in_order(self):
        channel = queue.Queue()
        channel.put_nowait([RunStarted(run_id="r")])
        channel.put_nowait(
            [RunProgress(run_id="r", time_s=1.0, events=1, frac=0.5)]
        )
        seen = []
        assert drain_channel(channel, seen.append) == 2
        assert [e.kind for e in seen] == [RunStarted.kind, RunProgress.kind]
        assert drain_channel(channel, seen.append) == 0  # empty: no-op


class TestRecorder:
    def test_writes_per_run_jsonl_and_closes_on_terminal(self, tmp_path):
        root = str(tmp_path / "telemetry")
        with TelemetryRecorder(root) as recorder:
            recorder(RunStarted(run_id="a", spec_id="meshgen"))
            recorder(RunProgress(run_id="a", time_s=1.0, events=3, frac=0.25))
            recorder(RunFinished(run_id="a"))
            assert not recorder._handles  # terminal event closed the file
        lines = (tmp_path / "telemetry" / "a.jsonl").read_text().splitlines()
        events = [event_from_json_dict(json.loads(line)) for line in lines]
        assert [e.kind for e in events] == [
            RunStarted.kind,
            RunProgress.kind,
            RunFinished.kind,
        ]
        assert events[0].spec_id == "meshgen"

    def test_run_ids_with_separators_stay_in_root(self, tmp_path):
        root = str(tmp_path / "telemetry")
        with TelemetryRecorder(root) as recorder:
            recorder(RunFinished(run_id="exp/seed=1"))
        assert os.listdir(root) == ["exp_seed=1.jsonl"]


class TestProbe:
    def test_detached_by_default(self):
        assert current_probe() is None

    def test_scope_installs_and_restores(self):
        session = ProbeSession(emit=lambda e: None, run_id="r")
        with probe_scope(session) as active:
            assert active is session
            assert current_probe() is session
        assert current_probe() is None

    def test_activate_returns_previous(self):
        outer = ProbeSession(emit=lambda e: None, run_id="outer")
        inner = ProbeSession(emit=lambda e: None, run_id="inner")
        assert activate_probe(outer) is None
        assert activate_probe(inner) is outer
        assert activate_probe(None) is inner

    def test_progress_clamps_frac(self):
        seen = []
        session = ProbeSession(emit=seen.append, run_id="r")
        session.progress(1.0, 5, 1.7)
        session.progress(2.0, 6, -0.2)
        assert [e.frac for e in seen] == [1.0, 0.0]

    def test_metric_copies_values(self):
        seen = []
        session = ProbeSession(emit=seen.append, run_id="r")
        values = {"0": 1.0}
        session.metric(1.0, "goodput_kbps", values)
        values["0"] = 99.0
        assert seen[0].values == {"0": 1.0}

    def test_interval_validated(self):
        with pytest.raises(ValueError):
            ProbeSession(emit=lambda e: None, run_id="r", sample_interval_s=0)


class TestRunObserved:
    def _loaded_engine(self):
        engine = Engine()
        order = []
        for delay in (5, 10, 10, 17, 30):
            engine.schedule(delay, lambda d=delay: order.append((engine.now, d)))
        # An event that reschedules itself across chunk boundaries.
        def tick():
            order.append((engine.now, "tick"))
            if engine.now < 25:
                engine.schedule(7, tick)
        engine.schedule(4, tick)
        return engine, order

    def test_bit_identical_to_single_run(self):
        plain_engine, plain = self._loaded_engine()
        plain_engine.run(until=30)
        observed_engine, observed = self._loaded_engine()
        boundaries = []
        observed_engine.run_observed(
            30, 10, lambda now, processed: boundaries.append((now, processed))
        )
        assert observed == plain
        assert observed_engine.now == plain_engine.now
        assert observed_engine.processed_events == plain_engine.processed_events

    def test_observer_fires_per_chunk_with_final_boundary(self):
        engine = Engine()
        engine.schedule(3, lambda: None)
        boundaries = []
        engine.run_observed(10, 4, lambda now, processed: boundaries.append(now))
        assert boundaries == [4, 8, 10]


class TestTierProbes:
    def test_slotted_tier_emits_deterministic_stream(self):
        from repro.experiments.specs import get_spec

        spec = get_spec("meshgen")
        hub, events = collect_hub(interval_s=2.0)
        session = ProbeSession(emit=hub.emit, run_id="mesh", sample_interval_s=2.0)
        with probe_scope(session):
            spec.run(**dict(MESH_FAST, seed=1))
        progress = [e for e in events if e.kind == RunProgress.kind]
        metrics = [e for e in events if e.kind == MetricSample.kind]
        # Samples land on the first slot at/after each interval boundary
        # (slot-quantised sim time); the final boundary at 4.0 is past
        # the last slot, so a 4 s run at 2 s interval samples twice.
        assert [p.time_s for p in progress] == pytest.approx([0.0, 2.0], abs=0.01)
        assert [p.frac for p in progress] == pytest.approx([0.0, 0.5], abs=0.01)
        # Running goodput is sampled at every non-zero boundary, one
        # value per flow.
        assert [m.time_s for m in metrics] == pytest.approx([2.0], abs=0.01)
        assert all(m.metric == "goodput_kbps" for m in metrics)
        assert all(len(m.values) == MESH_FAST["flows"] for m in metrics)
        # The stream is a pure function of the run: emitting again from
        # the same request reproduces it exactly.
        hub2, events2 = collect_hub(interval_s=2.0)
        session2 = ProbeSession(emit=hub2.emit, run_id="mesh", sample_interval_s=2.0)
        with probe_scope(session2):
            spec.run(**dict(MESH_FAST, seed=1))
        assert events2 == events

    def test_event_tier_emits_progress_and_goodput(self):
        from repro.experiments.specs import get_spec

        spec = get_spec("meshgen")
        hub, events = collect_hub(interval_s=1.0)
        session = ProbeSession(emit=hub.emit, run_id="mesh", sample_interval_s=1.0)
        kwargs = {"nodes": 9, "flows": 2, "duration_s": 3.0, "warmup_s": 0.5}
        with probe_scope(session):
            spec.run(**dict(kwargs, seed=1))
        progress = [e for e in events if e.kind == RunProgress.kind]
        metrics = [e for e in events if e.kind == MetricSample.kind]
        assert [p.time_s for p in progress] == [1.0, 2.0, 3.0]
        assert progress[-1].frac == 1.0
        assert [e.events for e in progress] == sorted(e.events for e in progress)
        assert metrics and all(m.metric == "goodput_kbps" for m in metrics)

    @pytest.mark.parametrize("fidelity", ["event", "slotted"])
    def test_observed_run_matches_detached_result(self, fidelity):
        from repro.experiments.specs import get_spec

        spec = get_spec("meshgen")
        kwargs = {
            "nodes": 9,
            "flows": 2,
            "duration_s": 3.0,
            "warmup_s": 0.5,
            "seed": 2,
            "fidelity": fidelity,
        }
        detached = spec.run(**kwargs).to_dict()
        hub, events = collect_hub()
        session = ProbeSession(emit=hub.emit, run_id="mesh")
        with probe_scope(session):
            attached = spec.run(**kwargs).to_dict()
        assert events  # the probe really was live
        assert json.dumps(attached, sort_keys=True) == json.dumps(
            detached, sort_keys=True
        )


class TestRunnerStreams:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_every_run_streams_grammar(self, jobs):
        requests = fast_requests()
        hub, events = collect_hub()
        with SweepRunner(jobs=jobs) as runner:
            records = runner.run(requests, telemetry=hub)
        assert len(records) == len(requests)
        for request in requests:
            stream = assert_grammar(events, request.run_id)
            assert stream[0].spec_id in ("stability", "")

    def test_detached_hub_is_ignored(self):
        hub = TelemetryHub()  # no listeners: attached is False
        with SweepRunner() as runner:
            records = runner.run(fast_requests(seeds=(1,)), telemetry=hub)
        assert len(records) == 1

    def test_pooled_mesh_streams_include_samples(self):
        requests = mesh_requests()
        hub, events = collect_hub()
        with SweepRunner(jobs=2) as runner:
            runner.run(requests, telemetry=hub)
        for request in requests:
            stream = assert_grammar(events, request.run_id)
            kinds = {e.kind for e in stream}
            assert RunProgress.kind in kinds
            assert MetricSample.kind in kinds

    def test_telemetry_does_not_change_records(self):
        requests = mesh_requests(seeds=(3,))
        with SweepRunner() as runner:
            detached = runner.run(requests)
        hub, events = collect_hub()
        with SweepRunner() as runner:
            attached = runner.run(requests, telemetry=hub)
        assert events
        assert json.dumps(attached[0].result.to_dict(), sort_keys=True) == json.dumps(
            detached[0].result.to_dict(), sort_keys=True
        )

    def test_cached_runs_stream_immediate_finish(self, tmp_path):
        requests = fast_requests(seeds=(1, 2))
        with SqliteStore(str(tmp_path / "runs.sqlite")) as store:
            with SweepRunner() as runner:
                runner.run(requests, store=store)
            hub, events = collect_hub()
            with SweepRunner() as runner:
                records = runner.run(requests, store=store, telemetry=hub)
        assert all(record.cached for record in records)
        for request in requests:
            stream = assert_grammar(events, request.run_id)
            assert [e.kind for e in stream] == [RunStarted.kind, RunFinished.kind]
            assert stream[-1].cached is True
        # Cached streams come back in request order.
        assert [e.run_id for e in events if e.kind == RunStarted.kind] == [
            r.run_id for r in requests
        ]

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_failed_run_streams_run_failed(self, jobs):
        requests = fast_requests()
        plan = FaultPlan.parse("1=raise")
        hub, events = collect_hub()
        with SweepRunner(jobs=jobs) as runner:
            records = runner.run(
                requests, policy="continue", faults=plan, telemetry=hub
            )
        assert records[1].failure is not None
        failed = assert_grammar(events, requests[1].run_id, terminal=RunFailed)
        assert failed[-1].failure_kind == "exception"
        assert failed[-1].error == "InjectedFault"
        for request in (requests[0], requests[2]):
            assert_grammar(events, request.run_id)

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_retried_run_terminates_exactly_once(self, jobs):
        requests = fast_requests()
        plan = FaultPlan.parse("1=raise/1")  # first attempt only
        hub, events = collect_hub()
        with SweepRunner(jobs=jobs) as runner:
            records = runner.run(
                requests, policy=RETRY_2, faults=plan, telemetry=hub
            )
        assert all(record.failure is None for record in records)
        for request in requests:
            assert_grammar(events, request.run_id)

    def test_fail_fast_emits_run_failed_before_raising(self):
        requests = fast_requests()
        plan = FaultPlan.parse("0=raise")
        hub, events = collect_hub()
        with SweepRunner() as runner:
            with pytest.raises(Exception):
                runner.run(requests, policy="fail", faults=plan, telemetry=hub)
        stream = stream_for(events, requests[0].run_id)
        assert stream[-1].kind == RunFailed.kind


class TestOnRecordContract:
    """Satellite: on_record ordering and exactly-once guarantees hold
    with telemetry attached, under retries and cache-hit replay."""

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_on_record_order_and_exactly_once_under_retry(self, jobs):
        requests = fast_requests()
        plan = FaultPlan.parse("1=raise/1")
        hub, events = collect_hub()
        seen = []
        with SweepRunner(jobs=jobs) as runner:
            runner.run(
                requests,
                on_record=lambda record: seen.append(record.request.run_id),
                policy=RETRY_2,
                faults=plan,
                telemetry=hub,
            )
        assert seen == [r.run_id for r in requests]

    def test_on_record_exactly_once_on_cache_replay(self, tmp_path):
        requests = fast_requests(seeds=(1, 2))
        with SqliteStore(str(tmp_path / "runs.sqlite")) as store:
            with SweepRunner() as runner:
                runner.run(requests, store=store)
            hub, events = collect_hub()
            seen = []
            with SweepRunner() as runner:
                runner.run(
                    requests,
                    on_record=lambda record: seen.append(record.request.run_id),
                    store=store,
                    telemetry=hub,
                )
        assert seen == [r.run_id for r in requests]


class TestBenchCase:
    def test_overhead_case_registered(self):
        from repro.bench import FUNCTION_CASES, build_suite

        assert "telemetry.overhead" in FUNCTION_CASES
        names = [case.name for case in build_suite()]
        assert "telemetry.overhead" in names
