"""Tests for the shared, memoised testbed simulations."""

from repro.experiments import testbedlab
from repro.experiments.testbedlab import clear_cache
from repro.experiments.testbedlab import testbed_simulation as simulate


class TestMemoisation:
    def setup_method(self):
        clear_cache()

    def teardown_method(self):
        clear_cache()

    def test_same_configuration_returns_same_run(self):
        a = simulate(4, ("F1",), 8.0, False)
        b = simulate(4, ("F1",), 8.0, False)
        assert a is b

    def test_different_configurations_do_not_alias(self):
        a = simulate(4, ("F1",), 8.0, False)
        b = simulate(4, ("F1",), 8.0, True)
        c = simulate(4, ("F2",), 8.0, False)
        assert a is not b and a is not c

    def test_sampler_covers_all_relays(self):
        run = simulate(4, ("F1",), 8.0, False)
        for node in testbedlab.RELAY_NODES:
            assert run.sampler.series_for(node) is not None

    def test_cache_capacity_bounded(self):
        for seed in range(testbedlab._CACHE_CAP + 3):
            simulate(seed, ("F1",), 2.0, False)
        assert len(testbedlab._cache) <= testbedlab._CACHE_CAP

    def test_flow_results_identical_to_fresh_run(self):
        """A cached network must show the same deliveries a fresh
        simulation of the same configuration produces."""
        cached = simulate(4, ("F1",), 8.0, False)
        delivered = cached.network.flow("F1").delivered
        clear_cache()
        fresh = simulate(4, ("F1",), 8.0, False)
        assert fresh.network.flow("F1").delivered == delivered
