"""Tests for topology builders: geometry invariants and wiring."""

import pytest

from repro.phy.propagation import distance
from repro.sim.units import seconds
from repro.topology.builders import build_chain_positions
from repro.topology.linear import linear_chain
from repro.topology.scenario1 import F1_PATH as S1_F1, F2_PATH as S1_F2, scenario1_network, scenario1_positions
from repro.topology.scenario2 import (
    F1_PATH as S2_F1,
    F2_PATH as S2_F2,
    F3_PATH as S2_F3,
    scenario2_network,
    scenario2_positions,
)
from repro.topology.testbed import (
    CHAIN,
    SRC2,
    testbed_connectivity as build_testbed_connectivity,
    testbed_network as build_testbed_network,
)


class TestChainPositions:
    def test_spacing(self):
        positions = build_chain_positions(4, 200.0)
        assert distance(positions[0], positions[1]) == 200.0
        assert distance(positions[0], positions[3]) == 600.0

    def test_minimum_two_nodes(self):
        with pytest.raises(ValueError):
            build_chain_positions(1)


class TestLinearChain:
    def test_node_count(self):
        network = linear_chain(hops=4)
        assert len(network.nodes) == 5

    def test_route_installed(self):
        network = linear_chain(hops=3)
        assert network.routing.path(0, 3) == [0, 1, 2, 3]

    def test_flow_registered_at_sink(self):
        network = linear_chain(hops=3)
        assert "F1" in network.flows
        assert network.flows["F1"].dst == 3

    def test_minimum_one_hop(self):
        with pytest.raises(ValueError):
            linear_chain(hops=0)

    def test_cbr_variant(self):
        network = linear_chain(hops=2, saturated=False, rate_bps=100_000)
        network.run(until_us=seconds(2))
        assert network.flows["F1"].generated > 0

    def test_canonical_regime_at_default_ranges(self):
        network = linear_chain(hops=4)
        conn = network.connectivity
        assert conn.can_receive(1, 0)
        assert not conn.can_receive(2, 0)
        assert conn.can_sense(2, 0)
        assert not conn.can_sense(3, 0)

    def test_one_hop_sensing_regime(self):
        network = linear_chain(hops=4, sense_range_m=350.0)
        conn = network.connectivity
        assert conn.can_sense(1, 0)
        assert not conn.can_sense(2, 0)


class TestTestbed:
    def test_nine_nodes(self):
        network = build_testbed_network()
        assert len(network.nodes) == 9

    def test_paths(self):
        network = build_testbed_network()
        assert network.routing.path("N0", "N7") == list(CHAIN)
        assert network.routing.path(SRC2, "N7") == [SRC2, "N4", "N5", "N6", "N7"]

    def test_f1_is_seven_hops(self):
        assert len(CHAIN) - 1 == 7

    def test_f2_is_four_hops(self):
        network = build_testbed_network()
        assert len(network.routing.path(SRC2, "N7")) - 1 == 4

    def test_flow_subset_selection(self):
        network = build_testbed_network(flows=("F1",))
        assert set(network.flows) == {"F1"}
        with pytest.raises(ValueError):
            build_testbed_network(flows=("F9",))

    def test_one_hop_sensing(self):
        conn = build_testbed_connectivity()
        assert conn.can_sense("N1", "N0")
        assert not conn.can_sense("N2", "N0")

    def test_src2_senses_junction_neighbourhood(self):
        conn = build_testbed_connectivity()
        assert conn.can_receive("N4", SRC2)
        assert conn.can_sense("N3", SRC2)
        assert conn.can_sense("N5", SRC2)
        assert not conn.can_receive("N3", SRC2)

    def test_hw_cap_default_1024(self):
        network = build_testbed_network()
        assert network.nodes["N0"].mac.config.hw_cw_cap == 1024

    def test_hw_cap_removable(self):
        network = build_testbed_network(hw_cw_cap=None)
        assert network.nodes["N0"].mac.config.hw_cw_cap is None

    def test_lossy_links_configurable(self):
        lossless = build_testbed_network(lossy_links=False)
        assert lossless.channel._loss == {}


class TestScenario1:
    def test_both_flows_are_eight_hops(self):
        assert len(S1_F1) - 1 == 8
        assert len(S1_F2) - 1 == 8

    def test_flows_share_trunk(self):
        assert S1_F1[-5:] == S1_F2[-5:] == [4, 3, 2, 1, 0]

    def test_thirteen_nodes(self):
        network = scenario1_network()
        assert len(network.nodes) == 13

    def test_branch_chains_in_canonical_regime(self):
        positions = scenario1_positions()
        # consecutive F1-branch hops decode (distance <= 250)
        for a, b in zip(S1_F1, S1_F1[1:]):
            assert distance(positions[a], positions[b]) <= 250.0

    def test_opposite_branch_heads_sense_but_not_decode(self):
        positions = scenario1_positions()
        d = distance(positions[5], positions[6])
        assert 250.0 < d <= 550.0

    def test_flow_schedule(self):
        network = scenario1_network(time_scale=1.0)
        assert network.flows["F1"].start_us == seconds(5)
        assert network.flows["F2"].start_us == seconds(605)
        assert network.flows["F2"].stop_us == seconds(1804)

    def test_time_scale_compresses_schedule(self):
        network = scenario1_network(time_scale=0.1)
        assert network.flows["F2"].start_us == seconds(60.5)

    def test_positive_time_scale_required(self):
        with pytest.raises(ValueError):
            scenario1_network(time_scale=0)


class TestScenario2:
    def test_twenty_eight_nodes(self):
        network = scenario2_network()
        assert len(network.nodes) == 28

    def test_path_lengths(self):
        assert len(S2_F1) - 1 == 9
        assert len(S2_F2) - 1 == 8
        assert len(S2_F3) - 1 == 8

    def test_sources_mutually_hidden(self):
        positions = scenario2_positions()
        assert distance(positions[0], positions[10]) > 550.0
        assert distance(positions[0], positions[19]) > 550.0
        assert distance(positions[10], positions[19]) > 550.0

    def test_chains_decodable_hop_by_hop(self):
        positions = scenario2_positions()
        for path in (S2_F1, S2_F2, S2_F3):
            for a, b in zip(path, path[1:]):
                assert distance(positions[a], positions[b]) <= 250.0

    def test_no_cross_chain_reception(self):
        positions = scenario2_positions()
        for a in S2_F2:
            for b in S2_F1:
                assert distance(positions[a], positions[b]) > 250.0

    def test_f2_tail_couples_with_f1_head(self):
        positions = scenario2_positions()
        tail = S2_F2[-1]
        assert distance(positions[tail], positions[0]) <= 550.0

    def test_f3_tail_couples_with_f1_tail(self):
        positions = scenario2_positions()
        tail = S2_F3[-1]
        assert distance(positions[tail], positions[9]) <= 550.0

    def test_f2_source_contends_with_two_nodes_only(self):
        network = scenario2_network()
        sensed = network.connectivity.sensors_of(10)
        assert sensed == frozenset({11, 12})

    def test_flow_schedule(self):
        network = scenario2_network(time_scale=1.0)
        assert network.flows["F3"].start_us == seconds(1805)
        assert network.flows["F3"].stop_us == seconds(3605)
        assert network.flows["F1"].stop_us == seconds(4500)
