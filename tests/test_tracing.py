"""Tests for trace time series and the recorder."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.tracing import TimeSeries, TraceRecorder
from repro.sim.units import US_PER_S


class TestTimeSeries:
    def test_append_and_len(self):
        series = TimeSeries()
        series.append(10, 1.0)
        series.append(20, 2.0)
        assert len(series) == 2

    def test_out_of_order_append_rejected(self):
        series = TimeSeries()
        series.append(10, 1.0)
        with pytest.raises(ValueError):
            series.append(5, 2.0)

    def test_equal_time_append_allowed(self):
        series = TimeSeries()
        series.append(10, 1.0)
        series.append(10, 2.0)
        assert len(series) == 2

    def test_iter_yields_pairs(self):
        series = TimeSeries()
        series.append(1, 10.0)
        series.append(2, 20.0)
        assert list(series) == [(1, 10.0), (2, 20.0)]

    def test_window_half_open(self):
        series = TimeSeries()
        for t in (0, 10, 20, 30):
            series.append(t, float(t))
        window = series.window(10, 30)
        assert window.times == [10, 20]

    def test_count_in(self):
        series = TimeSeries()
        for t in range(0, 100, 10):
            series.append(t, 1.0)
        assert series.count_in(0, 100) == 10
        assert series.count_in(25, 55) == 3

    def test_sum_in(self):
        series = TimeSeries()
        series.append(0, 5.0)
        series.append(10, 7.0)
        series.append(20, 9.0)
        assert series.sum_in(0, 15) == 12.0

    def test_mean_empty_is_zero(self):
        assert TimeSeries().mean() == 0.0

    def test_mean(self):
        series = TimeSeries()
        series.append(0, 2.0)
        series.append(1, 4.0)
        assert series.mean() == 3.0

    def test_last_value_before(self):
        series = TimeSeries()
        series.append(10, 1.0)
        series.append(20, 2.0)
        assert series.last_value_before(15) == 1.0
        assert series.last_value_before(20) == 2.0
        assert series.last_value_before(5, default=-1.0) == -1.0

    def test_time_average_piecewise_constant(self):
        series = TimeSeries()
        series.append(0, 0.0)
        series.append(50, 10.0)
        # signal is 0 on [0,50), 10 on [50,100) -> average 5
        assert series.time_average(0, 100) == pytest.approx(5.0)

    def test_time_average_with_initial_value(self):
        series = TimeSeries()
        series.append(50, 10.0)
        assert series.time_average(0, 100, initial=2.0) == pytest.approx(6.0)

    def test_time_average_empty_window(self):
        assert TimeSeries().time_average(10, 10) == 0.0

    def test_binned_rate_counts_per_second(self):
        series = TimeSeries()
        for t in range(0, US_PER_S, US_PER_S // 10):  # 10 events in 1 s
            series.append(t, 1.0)
        bins = series.binned_rate(0, US_PER_S, US_PER_S)
        assert len(bins) == 1
        center, rate = bins[0]
        assert rate == pytest.approx(10.0)
        assert center == pytest.approx(0.5)

    def test_binned_rate_respects_values_as_weights(self):
        series = TimeSeries()
        series.append(0, 8000.0)  # 8000 bits at t=0
        bins = series.binned_rate(0, US_PER_S, US_PER_S)
        assert bins[0][1] == pytest.approx(8000.0)

    def test_binned_rate_requires_positive_bin(self):
        with pytest.raises(ValueError):
            TimeSeries().binned_rate(0, 10, 0)

    @given(st.lists(st.integers(0, 10**6), min_size=1, max_size=50))
    def test_property_window_plus_outside_equals_total(self, times):
        series = TimeSeries()
        for t in sorted(times):
            series.append(t, 1.0)
        mid = (min(times) + max(times)) // 2
        total = series.count_in(0, 10**6 + 1)
        assert series.count_in(0, mid) + series.count_in(mid, 10**6 + 1) == total

    @given(
        st.lists(
            st.tuples(st.integers(0, 1000), st.floats(0, 100)),
            min_size=1,
            max_size=30,
        )
    )
    def test_property_time_average_bounded_by_extremes(self, samples):
        series = TimeSeries()
        values = []
        for t, v in sorted(samples, key=lambda p: p[0]):
            series.append(t, v)
            values.append(v)
        average = series.time_average(0, 2000, initial=values[0])
        assert min(values) - 1e-9 <= average <= max(values) + 1e-9


class TestTraceRecorder:
    def test_record_creates_series(self):
        recorder = TraceRecorder()
        recorder.record("x", 1, 2.0)
        assert len(recorder.get("x")) == 1

    def test_get_unknown_returns_empty(self):
        assert len(TraceRecorder().get("missing")) == 0

    def test_bump_counter(self):
        recorder = TraceRecorder()
        recorder.bump("drops")
        recorder.bump("drops", 2.0)
        assert recorder.counter("drops") == 3.0

    def test_counter_default_zero(self):
        assert TraceRecorder().counter("none") == 0.0
