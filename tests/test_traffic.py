"""Tests for traffic sources."""

import pytest

from repro.net.flow import Flow
from repro.sim.units import seconds
from repro.traffic.sources import CbrSource, PoissonSource, SaturatedSource
from repro.topology.builders import build_network, build_chain_positions
from repro.phy.connectivity import GeometricConnectivity
from repro.phy.propagation import RangeModel


def two_node_network(seed=0):
    conn = GeometricConnectivity(build_chain_positions(2), RangeModel())
    network = build_network(conn, seed=seed)
    network.routing.install_path([0, 1])
    flow = Flow("F", 0, 1)
    network.flows["F"] = flow
    network.nodes[1].register_flow(flow)
    return network, flow


class TestCbrSource:
    def test_interval_from_rate(self):
        network, flow = two_node_network()
        source = CbrSource(network.engine, network.nodes[0], flow, 2_000_000.0, 1000)
        # 8000 bits at 2 Mb/s = 4 ms
        assert source.interval_us == 4000

    def test_generates_at_rate(self):
        network, flow = two_node_network()
        source = CbrSource(network.engine, network.nodes[0], flow, 400_000.0, 1000)
        source.start()
        network.engine.run(until=seconds(1))
        # 400 kb/s / 8 kb per packet = 50 pkt/s
        assert flow.generated == pytest.approx(50, abs=2)

    def test_respects_start_time(self):
        network, flow = two_node_network()
        flow.start_us = seconds(0.5)
        source = CbrSource(network.engine, network.nodes[0], flow, 400_000.0, 1000)
        source.start()
        network.engine.run(until=seconds(1))
        assert flow.generated == pytest.approx(25, abs=2)

    def test_stops_at_stop_time(self):
        network, flow = two_node_network()
        flow.stop_us = seconds(0.5)
        source = CbrSource(network.engine, network.nodes[0], flow, 400_000.0, 1000)
        source.start()
        network.engine.run(until=seconds(2))
        assert flow.generated == pytest.approx(25, abs=2)

    def test_positive_rate_required(self):
        network, flow = two_node_network()
        with pytest.raises(ValueError):
            CbrSource(network.engine, network.nodes[0], flow, 0.0)

    def test_wrong_node_rejected(self):
        network, flow = two_node_network()
        with pytest.raises(ValueError):
            CbrSource(network.engine, network.nodes[1], flow, 1000.0)

    def test_double_start_rejected(self):
        network, flow = two_node_network()
        source = CbrSource(network.engine, network.nodes[0], flow, 1000.0)
        source.start()
        with pytest.raises(RuntimeError):
            source.start()


class TestPoissonSource:
    def test_mean_rate(self):
        network, flow = two_node_network(seed=9)
        source = PoissonSource(
            network.engine, network.nodes[0], flow, 400_000.0, network.rng, 1000
        )
        source.start()
        network.engine.run(until=seconds(10))
        # 50 pkt/s expected over 10 s -> 500, Poisson sd ~22
        assert 400 < flow.generated < 600

    def test_deterministic_given_seed(self):
        counts = []
        for _ in range(2):
            network, flow = two_node_network(seed=5)
            source = PoissonSource(
                network.engine, network.nodes[0], flow, 200_000.0, network.rng, 1000
            )
            source.start()
            network.engine.run(until=seconds(5))
            counts.append(flow.generated)
        assert counts[0] == counts[1]


class TestSaturatedSource:
    def test_keeps_source_queue_full(self):
        network, flow = two_node_network()
        source = SaturatedSource(network.engine, network.nodes[0], flow)
        source.start()
        network.engine.run(until=seconds(1))
        queue, _ = network.nodes[0].queue_for("own", 1)
        assert queue.is_full()

    def test_delivers_continuously(self):
        network, flow = two_node_network()
        source = SaturatedSource(network.engine, network.nodes[0], flow)
        source.start()
        network.engine.run(until=seconds(2))
        # saturated 1-hop link at ~0.9 Mb/s delivers >100 packets in 2 s
        assert flow.delivered > 100

    def test_respects_stop(self):
        network, flow = two_node_network()
        flow.stop_us = seconds(0.2)
        source = SaturatedSource(network.engine, network.nodes[0], flow)
        source.start()
        network.engine.run(until=seconds(2))
        generated_at_stop = flow.generated
        network.engine.run(until=seconds(3))
        assert flow.generated == generated_at_stop
