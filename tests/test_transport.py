"""Tests for the window transport (bidirectional TCP stand-in)."""

import pytest

from repro.core import attach_ezflow
from repro.net.flow import Flow
from repro.sim.units import seconds
from repro.topology.linear import linear_chain
from repro.transport import TransportConfig, WindowedSender, install_reverse_routes


def build(hops=4, seed=3, window=8, ack_every=1, timeout_s=2.0, total_packets=None):
    network = linear_chain(hops=hops, seed=seed, saturated=False, rate_bps=1000)
    network.sources.clear()  # replace the CBR source with the transport
    path = list(range(hops + 1))
    install_reverse_routes(network.routing, path)
    flow = Flow("T1", src=0, dst=hops)
    network.flows["T1"] = flow
    network.nodes[hops].register_flow(flow)
    sender = WindowedSender(
        network.engine,
        network.nodes[0],
        network.nodes[hops],
        flow,
        TransportConfig(
            window=window,
            ack_every=ack_every,
            retransmit_timeout_s=timeout_s,
            total_packets=total_packets,
        ),
    )
    return network, flow, sender


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            TransportConfig(window=0)
        with pytest.raises(ValueError):
            TransportConfig(ack_every=0)
        with pytest.raises(ValueError):
            TransportConfig(retransmit_timeout_s=0)

    def test_endpoints_checked(self):
        network, flow, sender = build()
        bad_flow = Flow("T2", src=1, dst=4)
        with pytest.raises(ValueError):
            WindowedSender(network.engine, network.nodes[0], network.nodes[4], bad_flow)


class TestReliableDelivery:
    def test_in_order_delivery_advances(self):
        network, flow, sender = build()
        sender.start()
        network.engine.run(until=seconds(30))
        assert sender.delivered_in_order > 300
        assert sender.base > 300

    def test_no_retransmissions_on_clean_path(self):
        network, flow, sender = build(window=4)
        sender.start()
        network.engine.run(until=seconds(30))
        assert sender.retransmissions == 0

    def test_ack_stream_travels_reverse_path(self):
        network, flow, sender = build()
        sender.start()
        network.engine.run(until=seconds(10))
        assert sender.acks_received > 50
        # ACK packets traverse the relays in reverse.
        reverse_queue = network.nodes[2].queue_for("fwd", 1)[0]
        assert reverse_queue.dequeued > 0

    def test_recovers_from_lossy_link(self):
        network, flow, sender = build(timeout_s=1.0)
        network.channel.set_link_loss(2, 3, 0.4)  # forward-path loss
        sender.start()
        network.engine.run(until=seconds(60))
        # MAC retries absorb most loss; the transport must keep making
        # progress regardless.
        assert sender.delivered_in_order > 200

    def test_go_back_n_retransmits_on_ack_loss(self):
        network, flow, sender = build(timeout_s=0.5)
        network.channel.set_link_loss(1, 0, 0.9)  # reverse-path loss
        sender.start()
        network.engine.run(until=seconds(60))
        assert sender.retransmissions > 0
        assert sender.delivered_in_order > 10  # still progresses

    def test_stop_time_respected(self):
        network, flow, sender = build()
        flow.stop_us = seconds(5)
        sender.start()
        network.engine.run(until=seconds(20))
        generated_at_stop = flow.generated
        network.engine.run(until=seconds(30))
        assert flow.generated == generated_at_stop


class TestWindowBehaviour:
    def test_window_limits_outstanding(self):
        network, flow, sender = build(window=4)
        sender.start()
        network.engine.run(until=seconds(10))
        assert sender.next_seq - sender.base <= 4

    def test_larger_window_no_slower(self):
        def goodput(window):
            network, flow, sender = build(window=window, seed=5)
            sender.start()
            network.engine.run(until=seconds(40))
            return flow.throughput_bps(seconds(10), seconds(40))

        assert goodput(16) >= 0.8 * goodput(2)

    def test_delayed_ack_coalescing(self):
        network, flow, sender = build(ack_every=4)
        sender.start()
        network.engine.run(until=seconds(20))
        # Roughly one ACK per four data packets.
        ratio = sender.delivered_in_order / max(1, sender.acks_received)
        assert ratio > 2.0


class TestTailAckFlush:
    def test_odd_transfer_completes_without_retransmissions(self):
        """Regression: with ack_every=2 and an odd packet count, the
        final in-order packet formed a partial ACK group that was never
        acknowledged — the transfer only 'finished' after a go-back-N
        timeout retransmitted it pointlessly."""
        network, flow, sender = build(window=4, ack_every=2, total_packets=7)
        sender.start()
        network.engine.run(until=seconds(30))
        assert sender.delivered_in_order == 7
        assert sender.complete
        assert sender.retransmissions == 0

    def test_flush_preempts_timeout(self):
        """The tail ACK must arrive on the delayed-ack clock, not the
        retransmit clock: well before timeout the sender is done."""
        network, flow, sender = build(window=4, ack_every=4, total_packets=5, timeout_s=5.0)
        sender.start()
        network.engine.run(until=seconds(2))  # << retransmit_timeout_s
        assert sender.complete
        assert sender.retransmissions == 0

    def test_delayed_ack_config_validated(self):
        with pytest.raises(ValueError):
            TransportConfig(delayed_ack_s=0)
        with pytest.raises(ValueError):
            TransportConfig(delayed_ack_s=3.0, retransmit_timeout_s=2.0)
        with pytest.raises(ValueError):
            TransportConfig(total_packets=0)


class TestTimerOnlyOnProgress:
    def ack(self, sender, seq):
        from repro.net.packet import Packet
        from repro.transport.window import ACK_BYTES

        return Packet(
            flow_id=sender._ack_flow.flow_id,
            seq=seq,
            src=sender.destination.node_id,
            dst=sender.source.node_id,
            size_bytes=ACK_BYTES,
            created_at=sender.engine.now,
        )

    def test_ack_without_send_opportunity_leaves_timer_alone(self):
        """Regression: _fill re-armed the retransmit timer even when no
        new packet was sent, so a trickle of ACKs that opened no send
        opportunity postponed go-back-N recovery forever."""
        network, flow, sender = build(window=2, total_packets=3)
        sender._fill()  # sends seq 1, 2 and arms the timer
        timer = sender._timer
        assert timer is not None
        # ACK for seq 1: window slides, seq 3 goes out -> progress,
        # the timer is legitimately reset.
        sender._on_ack_delivered(self.ack(sender, 1), network.engine.now)
        assert sender.next_seq == 4
        progressed = sender._timer
        assert progressed is not timer
        # ACK for seq 2: transfer limit reached, nothing new to send,
        # seq 3 still outstanding -> the armed timer must NOT be pushed.
        sender._on_ack_delivered(self.ack(sender, 2), network.engine.now)
        assert sender._timer is progressed
        # Stale cumulative ACK: ignored entirely.
        sender._on_ack_delivered(self.ack(sender, 1), network.engine.now)
        assert sender._timer is progressed

    def test_timer_cancelled_when_all_acked(self):
        network, flow, sender = build(window=2, total_packets=2)
        sender._fill()
        assert sender._timer is not None
        sender._on_ack_delivered(self.ack(sender, 2), network.engine.now)
        assert sender._timer is None
        assert sender.complete


class TestBidirectionalWithEzflow:
    def test_ezflow_compatible_with_transport(self):
        """The paper's claim: EZ-flow works for bidirectional traffic.
        With a congesting window, EZ-flow must not hurt goodput and
        should reduce path delay."""

        def run(ezflow):
            network, flow, sender = build(window=64, seed=3)
            if ezflow:
                attach_ezflow(network.nodes)
            sender.start()
            network.engine.run(until=seconds(120))
            return (
                flow.throughput_bps(seconds(40), seconds(120)),
                flow.mean_path_delay_s(seconds(40), seconds(120)),
            )

        thr_std, delay_std = run(False)
        thr_ez, delay_ez = run(True)
        assert thr_ez >= 0.95 * thr_std
        assert delay_ez <= 1.05 * delay_std


class TestMultiQueueRegression:
    def test_relay_entities_never_deadlock(self):
        """Regression for the orphaned-TX bug: with data and ACK streams
        crossing at every relay, no entity may stall in TX state while
        the radio is free."""
        network, flow, sender = build(window=16, seed=7)
        sender.start()
        network.engine.run(until=seconds(60))
        for node in network.nodes.values():
            for entity in node.mac.entities:
                if entity.state == "tx":
                    assert node.mac._transmitting_entity is entity
        # And the system is still making progress at the horizon.
        late = flow.delivered_bits.count_in(seconds(50), seconds(60))
        assert late > 0
