"""Tests for tree backhauls, on/off traffic and the load sweep."""

import pytest

from repro.core import attach_ezflow
from repro.net.flow import Flow
from repro.phy.propagation import distance
from repro.sim.units import seconds
from repro.topology.builders import build_chain_positions, build_network
from repro.phy.connectivity import GeometricConnectivity
from repro.phy.propagation import RangeModel
from repro.topology.trees import leaves_of, tree_backhaul, tree_positions
from repro.traffic.onoff import OnOffSource


class TestTreePositions:
    def test_node_count_regular_tree(self):
        positions, children = tree_positions(depth=3, fanout=2)
        # 1 + 2 + 4 + 8 = 15 nodes
        assert len(positions) == 15

    def test_children_structure(self):
        positions, children = tree_positions(depth=2, fanout=3)
        assert len(children[0]) == 3
        for child in children[0]:
            assert len(children[child]) == 3

    def test_parent_child_within_reception(self):
        positions, children = tree_positions(depth=3, fanout=2)
        for parent, kids in children.items():
            for child in kids:
                # each level adds one spacing of radius; the angular
                # offset keeps the hop length bounded
                assert distance(positions[parent], positions[child]) <= 260.0

    def test_validation(self):
        with pytest.raises(ValueError):
            tree_positions(depth=0, fanout=2)
        with pytest.raises(ValueError):
            tree_positions(depth=2, fanout=0)


class TestTreeBackhaul:
    def test_one_flow_per_leaf(self):
        network = tree_backhaul(depth=2, fanout=2, seed=1)
        assert len(network.flows) == 4
        assert sorted(leaves_of(network)) == sorted(
            flow.dst for flow in network.flows.values()
        )

    def test_root_has_one_queue_per_child(self):
        network = tree_backhaul(depth=2, fanout=2, seed=1)
        network.run(until_us=seconds(5))
        successors = network.routing.successors_of(0)
        assert len(successors) == 2

    def test_ezflow_adapts_per_successor_queue(self):
        network = tree_backhaul(depth=2, fanout=2, seed=1, rate_bps=600_000.0)
        controllers = attach_ezflow(network.nodes)
        network.run(until_us=seconds(60))
        root = controllers[0]
        # One CAA per child of the root, independently adjustable.
        assert len(root.caas) == 2

    def test_delivery_to_all_leaves(self):
        network = tree_backhaul(depth=2, fanout=2, seed=1, rate_bps=50_000.0)
        network.run(until_us=seconds(20))
        for flow in network.flows.values():
            assert flow.delivered > 0


class TestOnOffSource:
    def make_network(self, seed=1):
        conn = GeometricConnectivity(build_chain_positions(2), RangeModel())
        network = build_network(conn, seed=seed)
        network.routing.install_path([0, 1])
        flow = Flow("F", 0, 1)
        network.flows["F"] = flow
        network.nodes[1].register_flow(flow)
        return network, flow

    def test_generates_less_than_always_on(self):
        network, flow = self.make_network()
        source = OnOffSource(
            network.engine,
            network.nodes[0],
            flow,
            rate_bps=200_000.0,
            rng=network.rng,
            mean_on_s=1.0,
            mean_off_s=1.0,
        )
        source.start()
        network.engine.run(until=seconds(30))
        always_on = 200_000.0 * 30 / 8000  # packets if never off (750)
        assert 0 < flow.generated < always_on * 0.9
        # ~50% duty cycle -> roughly half the always-on volume
        assert always_on * 0.25 < flow.generated < always_on * 0.75

    def test_validation(self):
        network, flow = self.make_network()
        with pytest.raises(ValueError):
            OnOffSource(network.engine, network.nodes[0], flow, 0.0, network.rng)
        with pytest.raises(ValueError):
            OnOffSource(
                network.engine, network.nodes[0], flow, 1000.0, network.rng, mean_on_s=0
            )

    def test_first_burst_starts_on(self):
        """Regression: the source used to toggle OFF on its very first
        tick (phase end initialised to 0), staying silent for roughly
        mean_off_s despite the docs promising bursts start on."""
        network, flow = self.make_network()
        source = OnOffSource(
            network.engine,
            network.nodes[0],
            flow,
            rate_bps=200_000.0,
            rng=network.rng,
            mean_on_s=50.0,
            mean_off_s=10_000.0,  # any OFF start would silence the run
        )
        source.start()
        network.engine.run(until=seconds(2))
        assert source.is_on
        assert flow.generated > 0
        # At 200 kb/s and 1000-byte packets the first 2 s of an ON
        # period carry ~50 packets; allow generous slack for phase ends.
        assert flow.generated > 20

    def test_deterministic(self):
        counts = []
        for _ in range(2):
            network, flow = self.make_network(seed=5)
            source = OnOffSource(
                network.engine, network.nodes[0], flow, 100_000.0, network.rng
            )
            source.start()
            network.engine.run(until=seconds(20))
            counts.append(flow.generated)
        assert counts[0] == counts[1]


class TestLoadSweep:
    def test_smoke_two_loads(self):
        from repro.experiments import loadsweep

        result = loadsweep.run(
            duration_s=40.0, warmup_s=10.0, loads_kbps=(50.0, 2000.0), seed=3
        )
        table = result.find_table("Load sweep")
        assert len(table.rows) == 4
        rows = {
            (load, ez): goodput
            for load, ez, goodput, delay, buffer1 in table.rows
        }
        # Below capacity both deliver the offered load.
        assert rows[(50.0, "off")] == pytest.approx(50.0, rel=0.2)
        assert rows[(50.0, "on")] == pytest.approx(50.0, rel=0.2)
