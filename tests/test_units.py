"""Tests for time-unit conversions."""

from repro.sim.units import (
    US_PER_MS,
    US_PER_S,
    microseconds,
    milliseconds,
    seconds,
    to_seconds,
)


def test_seconds_to_ticks():
    assert seconds(1) == US_PER_S
    assert seconds(2.5) == 2_500_000


def test_milliseconds_to_ticks():
    assert milliseconds(1) == US_PER_MS
    assert milliseconds(0.5) == 500


def test_microseconds_rounds():
    assert microseconds(1.4) == 1
    assert microseconds(1.6) == 2


def test_to_seconds_roundtrip():
    assert to_seconds(seconds(3.25)) == 3.25


def test_seconds_returns_int():
    assert isinstance(seconds(0.1), int)


def test_fractional_seconds():
    assert seconds(0.000001) == 1
